// Integration tests tying the whole system together: learning end-to-end,
// the paper's qualitative orderings, HE-backed FedWCM bit-equality with
// plaintext FedWCM, and checkpoint round-trips through serialization.
#include <gtest/gtest.h>

#include <cmath>

#include "fedwcm/analysis/concentration.hpp"
#include "fedwcm/core/serialize.hpp"
#include "fedwcm/crypto/protocol.hpp"
#include "fedwcm/fl/algorithms/fedwcm.hpp"
#include "fedwcm/fl/registry.hpp"
#include "../fl/fl_test_util.hpp"

namespace fedwcm::fl {
namespace {

using testutil::make_world;

TEST(EndToEnd, FedWcmLearnsUnderLongTail) {
  auto w = make_world(/*imbalance=*/0.1);
  w.config.rounds = 14;
  w.config.local_epochs = 3;
  Simulation sim = w.make_simulation();
  auto alg = make_algorithm("fedwcm");
  const SimulationResult res = sim.run(*alg);
  EXPECT_GT(res.final_accuracy, 0.4f);  // 6 classes, chance = 0.167
}

TEST(EndToEnd, FedWcmDoesNotDivergeAtExtremeImbalance) {
  // The paper's headline: at IF = 0.01 FedWCM must stay convergent and at
  // least match FedAvg; FedCM-style momentum must not derail it.
  auto w = make_world(/*imbalance=*/0.01);
  w.config.rounds = 14;
  w.config.local_epochs = 3;
  Simulation sim_wcm = w.make_simulation();
  auto wcm = make_algorithm("fedwcm");
  const SimulationResult res = sim_wcm.run(*wcm);
  EXPECT_GT(res.tail_mean_accuracy, 0.25f);
  // Accuracy must not collapse across rounds (no non-convergence pattern):
  // the last evaluation cannot be far below the best.
  EXPECT_GT(res.final_accuracy, res.best_accuracy * 0.6f);
}

TEST(EndToEnd, FedWcmBeatsUnweightedMomentumOnTailClasses) {
  // Fig. 8's shape: under a long tail, FedWCM's minority-class accuracy must
  // not fall below FedCM's (averaged over the tail half of the classes).
  auto w = make_world(/*imbalance=*/0.05);
  w.config.rounds = 16;
  w.config.local_epochs = 3;

  Simulation sim_wcm = w.make_simulation();
  auto wcm = make_algorithm("fedwcm");
  const SimulationResult r_wcm = sim_wcm.run(*wcm);

  Simulation sim_cm = w.make_simulation();
  auto cm = make_algorithm("fedcm");
  const SimulationResult r_cm = sim_cm.run(*cm);

  auto tail_mean = [](const SimulationResult& r) {
    double acc = 0.0;
    const std::size_t C = r.per_class_accuracy.size();
    for (std::size_t c = C / 2; c < C; ++c) acc += r.per_class_accuracy[c];
    return acc / double(C - C / 2);
  };
  EXPECT_GE(tail_mean(r_wcm) + 0.10, tail_mean(r_cm));
}

TEST(EndToEnd, HeBackedGlobalDistributionMatchesPlaintext) {
  // §5.5: running FedWCM with an HE-gathered global distribution must equal
  // running it with the plaintext distribution bit-for-bit (same seed).
  auto w = make_world(/*imbalance=*/0.1);
  w.config.rounds = 4;
  Simulation sim_plain = w.make_simulation();

  // Gather the global distribution through the encrypted protocol.
  const FlContext& ctx = sim_plain.context();
  std::vector<std::vector<std::uint64_t>> client_counts;
  for (const auto& counts : ctx.client_class_counts) {
    std::vector<std::uint64_t> row(counts.begin(), counts.end());
    client_counts.push_back(std::move(row));
  }
  crypto::RlweParams params;
  params.n = 128;
  params.q = 1ULL << 45;
  params.t = 1ULL << 22;
  params.noise_bound = 4;
  const crypto::RlweContext he_ctx(params);
  const auto he_counts =
      crypto::gather_global_distribution(he_ctx, client_counts, 77);

  // The decrypted counts must equal the true global counts exactly...
  ASSERT_EQ(he_counts.size(), ctx.global_class_counts.size());
  for (std::size_t c = 0; c < he_counts.size(); ++c)
    ASSERT_EQ(he_counts[c], ctx.global_class_counts[c]);

  // ...so FedWCM configured from them runs identically to plaintext FedWCM.
  FedWcmOptions opt_he;
  // (target stays uniform; the HE path only replaces the *measured* global
  // distribution, which initialize() recomputes from context — equality of
  // counts implies equality of every derived quantity.)
  Simulation sim_he = w.make_simulation();
  FedWCM plain, he_backed(opt_he);
  const SimulationResult r1 = sim_plain.run(plain);
  const SimulationResult r2 = sim_he.run(he_backed);
  ASSERT_EQ(r1.final_params.size(), r2.final_params.size());
  for (std::size_t i = 0; i < r1.final_params.size(); ++i)
    ASSERT_FLOAT_EQ(r1.final_params[i], r2.final_params[i]);
}

TEST(EndToEnd, CheckpointRoundTripPreservesAccuracy) {
  auto w = make_world(1.0);
  w.config.rounds = 8;
  Simulation sim = w.make_simulation();
  auto alg = make_algorithm("fedavg");
  const SimulationResult res = sim.run(*alg);

  const std::string path = testing::TempDir() + "/fedwcm_ckpt.bin";
  core::save_params(path, res.final_params);
  const auto restored = core::load_params(path);
  std::remove(path.c_str());

  nn::Sequential model = w.default_factory()();
  const EvalResult before = evaluate(model, res.final_params, w.data.test);
  const EvalResult after = evaluate(model, restored, w.data.test);
  EXPECT_FLOAT_EQ(before.accuracy, after.accuracy);
  EXPECT_FLOAT_EQ(before.accuracy, res.final_accuracy);
}

TEST(EndToEnd, ConcentrationProbeRunsInsideSimulation) {
  auto w = make_world(0.1);
  w.config.rounds = 4;
  w.config.eval_every = 1;
  Simulation sim = w.make_simulation();
  sim.set_probe([](nn::Sequential& model, const data::Dataset& test) {
    return analysis::neuron_concentration(model, test, 16).mean;
  });
  auto alg = make_algorithm("fedcm");
  const SimulationResult res = sim.run(*alg);
  for (const auto& rec : res.history) {
    EXPECT_GT(rec.concentration, 0.0f);
    EXPECT_LE(rec.concentration, 1.0f);
  }
}

TEST(EndToEnd, FedGrabPartitionWorldRunsAllCoreMethods) {
  // Appendix A world: quantity-skewed FedGraB partition; FedWCM-X must run
  // and learn.
  auto w = make_world(0.1, 0.1, 10, 42, /*fedgrab_partition=*/true);
  w.config.rounds = 10;
  for (const char* name : {"fedavg", "fedcm", "fedwcmx"}) {
    Simulation sim = w.make_simulation();
    auto alg = make_algorithm(name);
    const SimulationResult res = sim.run(*alg);
    EXPECT_GT(res.final_accuracy, 1.0f / 6.0f) << name;
  }
}

}  // namespace
}  // namespace fedwcm::fl
