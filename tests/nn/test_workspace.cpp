// The per-worker scratch arena: buffers are keyed by (owner, slot) and
// reused across calls, Sequential wires its layers to an external workspace
// (surviving copy/move re-assignment), and a warmed-up forward/backward pass
// performs zero heap allocations — the property the training hot path relies
// on. The naive kernel mode intentionally allocates (seed-faithful baseline),
// which doubles as a sanity check that the allocation counter counts.
#include "fedwcm/nn/workspace.hpp"

#include <gtest/gtest.h>

#include "../support/alloc_counter.hpp"
#include "fedwcm/core/rng.hpp"
#include "fedwcm/core/tensor.hpp"
#include "fedwcm/nn/loss.hpp"
#include "fedwcm/nn/models.hpp"
#include "fedwcm/nn/sequential.hpp"

namespace fedwcm::nn {
namespace {

struct ModeGuard {
  core::KernelMode saved = core::kernel_mode();
  ~ModeGuard() { core::set_kernel_mode(saved); }
};

TEST(Workspace, BuffersAreKeyedByOwnerAndSlot) {
  Workspace ws;
  const int owner_a = 0, owner_b = 0;
  core::Matrix& m1 = ws.get(&owner_a, 0, 3, 4);
  EXPECT_EQ(m1.rows(), 3u);
  EXPECT_EQ(m1.cols(), 4u);
  m1(0, 0) = 42.0f;
  // Same key: same buffer (same storage), reshaped on demand.
  core::Matrix& m2 = ws.get(&owner_a, 0, 3, 4);
  EXPECT_EQ(&m1, &m2);
  EXPECT_FLOAT_EQ(m2(0, 0), 42.0f);
  // Different slot or owner: distinct buffers.
  EXPECT_NE(&ws.get(&owner_a, 1, 3, 4), &m1);
  EXPECT_NE(&ws.get(&owner_b, 0, 3, 4), &m1);
  EXPECT_NE(&owner_a, &owner_b);  // distinct automatic objects
  std::vector<float>& v = ws.get_vec(&owner_a, 0, 7);
  EXPECT_EQ(v.size(), 7u);
  EXPECT_EQ(ws.buffer_count(), 4u);
  ws.clear();
  EXPECT_EQ(ws.buffer_count(), 0u);
}

TEST(Workspace, SteadyStateLookupsDoNotAllocate) {
  Workspace ws;
  const int owner = 0;
  ws.get(&owner, 0, 8, 8);
  ws.get_vec(&owner, 1, 64);
  const std::uint64_t before = testing::allocation_count();
  for (int i = 0; i < 10; ++i) {
    ws.get(&owner, 0, 8, 8);
    ws.get_vec(&owner, 1, 64);
  }
  EXPECT_EQ(testing::allocation_count() - before, 0u);
}

/// One full training step (forward + loss + backward) on `model`.
float step(Sequential& model, const core::Matrix& x,
           const std::vector<std::size_t>& y, const Loss& loss,
           core::Matrix& dlogits) {
  model.zero_grads();
  const core::Matrix& logits = model.forward(x);
  const float l = loss.compute(logits, y, dlogits);
  model.backward(dlogits);
  return l;
}

TEST(Workspace, WarmMlpStepPerformsZeroAllocations) {
  ModeGuard guard;
  core::set_kernel_mode(core::KernelMode::kBlocked);
  Workspace ws;
  Sequential model = mlp_factory(12, {16, 8}, 5)();
  model.set_workspace(&ws);
  core::Rng rng(1);
  model.init_params(rng);
  core::Matrix x(6, 12);
  for (float& v : x.span()) v = float(rng.normal());
  const std::vector<std::size_t> y = {0, 1, 2, 3, 4, 0};
  CrossEntropyLoss loss;
  core::Matrix dlogits;

  step(model, x, y, loss, dlogits);  // warm up arenas and caches
  const std::uint64_t before = testing::allocation_count();
  for (int i = 0; i < 5; ++i) step(model, x, y, loss, dlogits);
  EXPECT_EQ(testing::allocation_count() - before, 0u)
      << "steady-state MLP training step must not touch the heap";
}

TEST(Workspace, WarmConvStepPerformsZeroAllocations) {
  ModeGuard guard;
  core::set_kernel_mode(core::KernelMode::kBlocked);
  Workspace ws;
  Sequential model = mini_convnet_factory(1, 8, 8, 4)();
  model.set_workspace(&ws);
  core::Rng rng(2);
  model.init_params(rng);
  core::Matrix x(3, 64);
  for (float& v : x.span()) v = float(rng.normal());
  const std::vector<std::size_t> y = {0, 1, 2};
  CrossEntropyLoss loss;
  core::Matrix dlogits;

  step(model, x, y, loss, dlogits);
  const std::uint64_t before = testing::allocation_count();
  for (int i = 0; i < 5; ++i) step(model, x, y, loss, dlogits);
  EXPECT_EQ(testing::allocation_count() - before, 0u)
      << "steady-state conv training step (persistent im2col) must not "
         "touch the heap";
}

TEST(Workspace, NaiveModeAllocatesProvingTheCounterCounts) {
  ModeGuard guard;
  core::set_kernel_mode(core::KernelMode::kNaive);
  Sequential model = mlp_factory(12, {16}, 5)();
  core::Rng rng(3);
  model.init_params(rng);
  core::Matrix x(6, 12);
  for (float& v : x.span()) v = float(rng.normal());
  const std::vector<std::size_t> y = {0, 1, 2, 3, 4, 0};
  CrossEntropyLoss loss;
  core::Matrix dlogits;
  step(model, x, y, loss, dlogits);
  const std::uint64_t before = testing::allocation_count();
  step(model, x, y, loss, dlogits);
  EXPECT_GT(testing::allocation_count() - before, 0u)
      << "the seed-faithful naive path allocates per step by design";
}

TEST(Workspace, SequentialMoveAssignKeepsTargetWorkspace) {
  ModeGuard guard;
  core::set_kernel_mode(core::KernelMode::kBlocked);
  Workspace ws;
  auto factory = mlp_factory(6, {8}, 3);
  Sequential model = factory();
  model.set_workspace(&ws);
  core::Rng rng(4);
  model.init_params(rng);
  core::Matrix x(2, 6);
  for (float& v : x.span()) v = float(rng.normal());
  const std::vector<std::size_t> y = {0, 1};
  CrossEntropyLoss loss;
  core::Matrix dlogits;
  step(model, x, y, loss, dlogits);
  const std::size_t count_before = ws.buffer_count();
  EXPECT_GT(count_before, 0u);

  // Worker::model is re-assigned from a factory clone in places; the target's
  // workspace wiring must survive the move so scratch keeps landing in `ws`.
  model = factory();
  model.init_params(rng);
  step(model, x, y, loss, dlogits);
  EXPECT_GT(ws.buffer_count(), count_before)
      << "moved-in layers must be rewired onto the target's workspace";
}

}  // namespace
}  // namespace fedwcm::nn
