// Sequential container: parameter flattening, forward/backward plumbing,
// deep copies, activation recording, and the Residual block.
#include "fedwcm/nn/sequential.hpp"

#include <gtest/gtest.h>

#include "fedwcm/nn/activations.hpp"
#include "fedwcm/nn/grad_check.hpp"
#include "fedwcm/nn/linear.hpp"
#include "fedwcm/nn/loss.hpp"
#include "fedwcm/nn/models.hpp"

namespace fedwcm::nn {
namespace {

Sequential two_layer() {
  Sequential m;
  m.add(std::make_unique<Linear>(3, 4));
  m.add(std::make_unique<ReLU>());
  m.add(std::make_unique<Linear>(4, 2));
  return m;
}

TEST(Sequential, ParamCountSumsLayers) {
  Sequential m = two_layer();
  EXPECT_EQ(m.param_count(), (3u * 4 + 4) + (4u * 2 + 2));
  EXPECT_EQ(m.layer_count(), 3u);
}

TEST(Sequential, ParamsRoundTrip) {
  Sequential m = two_layer();
  core::Rng rng(1);
  m.init_params(rng);
  const ParamVector p = m.get_params();
  Sequential n = two_layer();
  n.set_params(p);
  EXPECT_EQ(n.get_params(), p);
  EXPECT_THROW(n.set_params(std::vector<float>(3)), std::invalid_argument);
}

TEST(Sequential, ForwardShapeAndActivationsRecorded) {
  Sequential m = two_layer();
  core::Rng rng(2);
  m.init_params(rng);
  Matrix x(5, 3, 0.5f);
  const Matrix& logits = m.forward(x);
  EXPECT_EQ(logits.rows(), 5u);
  EXPECT_EQ(logits.cols(), 2u);
  const auto& acts = m.activations();
  ASSERT_EQ(acts.size(), 4u);  // input + 3 layer outputs
  EXPECT_EQ(acts[0].cols(), 3u);
  EXPECT_EQ(acts[1].cols(), 4u);
  EXPECT_EQ(acts[2].cols(), 4u);
  EXPECT_EQ(acts[3].cols(), 2u);
}

TEST(Sequential, CopyIsDeep) {
  Sequential m = two_layer();
  core::Rng rng(3);
  m.init_params(rng);
  Sequential copy = m;  // copy ctor clones layers
  ParamVector p = m.get_params();
  ParamVector zeros(p.size(), 0.0f);
  copy.set_params(zeros);
  EXPECT_EQ(m.get_params(), p);
  EXPECT_EQ(copy.get_params(), zeros);
}

TEST(Sequential, GradCheckEndToEnd) {
  Sequential m = two_layer();
  core::Rng rng(4);
  m.init_params(rng);
  Matrix x(6, 3);
  for (float& v : x.span()) v = float(rng.normal());
  std::vector<std::size_t> y{0, 1, 1, 0, 1, 0};
  CrossEntropyLoss loss;
  const auto res = gradient_check(m, loss, x, y, 1e-3f, 1);
  EXPECT_LE(res.max_violation, 1.0f);
  EXPECT_EQ(res.checked, m.param_count());
}

TEST(Sequential, InputGradientRequiresBackward) {
  Sequential m = two_layer();
  EXPECT_THROW(m.input_gradient(), std::invalid_argument);
}

TEST(Residual, ForwardAddsIdentity) {
  Sequential body;
  body.add(std::make_unique<Linear>(3, 3, /*bias=*/false));
  Sequential m;
  m.add(std::make_unique<Residual>(std::move(body)));
  ParamVector zeros(m.param_count(), 0.0f);
  m.set_params(zeros);  // body(x) = 0 -> residual output = x
  Matrix x(2, 3, std::vector<float>{1, 2, 3, 4, 5, 6});
  const Matrix& out = m.forward(x);
  for (std::size_t i = 0; i < x.size(); ++i)
    EXPECT_FLOAT_EQ(out.data()[i], x.data()[i]);
}

TEST(Residual, GradCheck) {
  Sequential body;
  body.add(std::make_unique<Linear>(4, 4));
  body.add(std::make_unique<ReLU>());
  body.add(std::make_unique<Linear>(4, 4));
  Sequential m;
  m.add(std::make_unique<Residual>(std::move(body)));
  m.add(std::make_unique<Linear>(4, 3));
  core::Rng rng(5);
  m.init_params(rng);
  Matrix x(4, 4);
  for (float& v : x.span()) v = float(rng.normal());
  std::vector<std::size_t> y{0, 1, 2, 1};
  CrossEntropyLoss loss;
  const auto res = gradient_check(m, loss, x, y, 1e-3f, 1);
  EXPECT_LE(res.max_violation, 1.0f);
}

TEST(ModelFactories, MlpShapes) {
  Sequential mlp = make_mlp(10, {16, 8}, 4);
  core::Rng rng(6);
  mlp.init_params(rng);
  Matrix x(3, 10, 0.1f);
  const Matrix& out = mlp.forward(x);
  EXPECT_EQ(out.cols(), 4u);
  EXPECT_EQ(mlp.param_count(), (10u * 16 + 16) + (16u * 8 + 8) + (8u * 4 + 4));
}

TEST(ModelFactories, MiniConvNetRunsForwardBackward) {
  Sequential net = make_mini_convnet(1, 8, 8, 5, 4);
  core::Rng rng(7);
  net.init_params(rng);
  Matrix x(2, 64);
  for (float& v : x.span()) v = float(rng.normal());
  const Matrix& out = net.forward(x);
  EXPECT_EQ(out.cols(), 5u);
  CrossEntropyLoss loss;
  Matrix dlogits;
  std::vector<std::size_t> y{1, 3};
  loss.compute(out, y, dlogits);
  net.zero_grads();
  net.backward(dlogits);
  const ParamVector g = net.get_grads();
  float norm = 0.0f;
  for (float v : g) norm += v * v;
  EXPECT_GT(norm, 0.0f);
}

TEST(ModelFactories, FactoryProducesFreshInstances) {
  auto factory = mlp_factory(4, {8}, 2);
  Sequential a = factory();
  Sequential b = factory();
  core::Rng rng(8);
  a.init_params(rng);
  // b stays zero-initialized: factories must not share state.
  EXPECT_NE(a.get_params(), b.get_params());
}

}  // namespace
}  // namespace fedwcm::nn
