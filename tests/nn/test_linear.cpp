// Linear layer: forward against hand computation, backward against finite
// differences, parameter flattening round-trips.
#include "fedwcm/nn/linear.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace fedwcm::nn {
namespace {

TEST(Linear, ForwardMatchesHandComputation) {
  Linear layer(2, 3);
  // W = [[1,2,3],[4,5,6]], b = [0.5, -0.5, 0].
  layer.set_params(std::vector<float>{1, 2, 3, 4, 5, 6, 0.5f, -0.5f, 0});
  Matrix in(1, 2, std::vector<float>{1, 2});
  Matrix out;
  layer.forward(in, out);
  EXPECT_FLOAT_EQ(out(0, 0), 1 * 1 + 2 * 4 + 0.5f);
  EXPECT_FLOAT_EQ(out(0, 1), 1 * 2 + 2 * 5 - 0.5f);
  EXPECT_FLOAT_EQ(out(0, 2), 1 * 3 + 2 * 6);
}

TEST(Linear, BackwardComputesExactGradients) {
  Linear layer(2, 2);
  layer.set_params(std::vector<float>{1, 2, 3, 4, 0, 0});  // W=[[1,2],[3,4]]
  Matrix in(2, 2, std::vector<float>{1, 0, 0, 1});         // identity batch
  Matrix out, grad_in;
  layer.forward(in, out);
  Matrix grad_out(2, 2, std::vector<float>{1, 0, 0, 1});
  layer.zero_grads();
  layer.backward(grad_out, grad_in);
  // gW = in^T grad_out = identity; gb = column sums = [1, 1].
  std::vector<float> grads(layer.param_count());
  layer.copy_grads_to(grads);
  EXPECT_FLOAT_EQ(grads[0], 1.0f);  // gW(0,0)
  EXPECT_FLOAT_EQ(grads[1], 0.0f);
  EXPECT_FLOAT_EQ(grads[3], 1.0f);  // gW(1,1)
  EXPECT_FLOAT_EQ(grads[4], 1.0f);  // gb[0]
  // grad_in = grad_out W^T.
  EXPECT_FLOAT_EQ(grad_in(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(grad_in(0, 1), 3.0f);
  EXPECT_FLOAT_EQ(grad_in(1, 0), 2.0f);
  EXPECT_FLOAT_EQ(grad_in(1, 1), 4.0f);
}

TEST(Linear, GradsAccumulateUntilZeroed) {
  Linear layer(1, 1);
  layer.set_params(std::vector<float>{2, 0});
  Matrix in(1, 1, std::vector<float>{1});
  Matrix out, grad_in;
  Matrix grad_out(1, 1, std::vector<float>{1});
  layer.zero_grads();
  layer.forward(in, out);
  layer.backward(grad_out, grad_in);
  layer.forward(in, out);
  layer.backward(grad_out, grad_in);
  std::vector<float> grads(layer.param_count());
  layer.copy_grads_to(grads);
  EXPECT_FLOAT_EQ(grads[0], 2.0f);  // accumulated twice
  layer.zero_grads();
  layer.copy_grads_to(grads);
  EXPECT_FLOAT_EQ(grads[0], 0.0f);
}

TEST(Linear, ParamRoundTrip) {
  Linear layer(3, 4);
  EXPECT_EQ(layer.param_count(), 3u * 4u + 4u);
  core::Rng rng(3);
  layer.init_params(rng);
  std::vector<float> p(layer.param_count());
  layer.copy_params_to(p);
  Linear other(3, 4);
  other.set_params(p);
  std::vector<float> q(other.param_count());
  other.copy_params_to(q);
  EXPECT_EQ(p, q);
}

TEST(Linear, NoBiasVariant) {
  Linear layer(2, 2, /*bias=*/false);
  EXPECT_EQ(layer.param_count(), 4u);
  layer.set_params(std::vector<float>{1, 0, 0, 1});
  Matrix in(1, 2, std::vector<float>{5, 7});
  Matrix out;
  layer.forward(in, out);
  EXPECT_FLOAT_EQ(out(0, 0), 5.0f);
  EXPECT_FLOAT_EQ(out(0, 1), 7.0f);
}

TEST(Linear, CloneIsIndependentCopy) {
  Linear layer(2, 2);
  core::Rng rng(4);
  layer.init_params(rng);
  auto copy = layer.clone();
  std::vector<float> p1(layer.param_count()), p2(copy->param_count());
  layer.copy_params_to(p1);
  copy->copy_params_to(p2);
  EXPECT_EQ(p1, p2);
  copy->set_params(std::vector<float>{9, 9, 9, 9, 9, 9});
  layer.copy_params_to(p1);
  EXPECT_NE(p1[0], 9.0f);
}

TEST(Linear, InitIsSeedDeterministicAndBounded) {
  Linear a(10, 10), b(10, 10);
  core::Rng r1(77), r2(77);
  a.init_params(r1);
  b.init_params(r2);
  std::vector<float> pa(a.param_count()), pb(b.param_count());
  a.copy_params_to(pa);
  b.copy_params_to(pb);
  EXPECT_EQ(pa, pb);
  const float limit = std::sqrt(6.0f / 10.0f) + 1e-6f;
  for (std::size_t i = 0; i < 100; ++i) EXPECT_LE(std::abs(pa[i]), limit);
  for (std::size_t i = 100; i < 110; ++i) EXPECT_FLOAT_EQ(pa[i], 0.0f);  // bias
}

TEST(Linear, ShapeMismatchThrows) {
  Linear layer(2, 3);
  Matrix in(1, 5), out;
  EXPECT_THROW(layer.forward(in, out), std::invalid_argument);
  EXPECT_THROW(layer.set_params(std::vector<float>(3)), std::invalid_argument);
}

}  // namespace
}  // namespace fedwcm::nn
