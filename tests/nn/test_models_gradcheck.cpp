// Parameterized property sweep: exact gradients for every (architecture,
// loss) combination the simulator uses. This is the single most important
// invariant in the stack — every FL algorithm builds on these gradients.
#include <gtest/gtest.h>

#include "fedwcm/nn/grad_check.hpp"
#include "fedwcm/nn/loss.hpp"
#include "fedwcm/nn/models.hpp"

namespace fedwcm::nn {
namespace {

struct GradCase {
  std::string name;
  std::size_t input_dim;
  std::vector<std::size_t> hidden;
  std::size_t classes;
  std::string loss;
};

std::unique_ptr<Loss> make_loss(const std::string& kind, std::size_t classes) {
  if (kind == "ce") return std::make_unique<CrossEntropyLoss>();
  if (kind == "focal") return std::make_unique<FocalLoss>(2.0f);
  if (kind == "balanced") {
    std::vector<float> counts(classes);
    for (std::size_t c = 0; c < classes; ++c) counts[c] = float(100 >> c) + 1.0f;
    return std::make_unique<BalancedSoftmaxLoss>(std::move(counts));
  }
  std::vector<float> counts(classes);
  for (std::size_t c = 0; c < classes; ++c) counts[c] = float(classes - c) * 10.0f;
  return std::make_unique<LdamLoss>(std::move(counts), 0.5f, /*s=*/3.0f);
}

class MlpGradCheck : public ::testing::TestWithParam<GradCase> {};

TEST_P(MlpGradCheck, AnalyticMatchesNumeric) {
  const GradCase& tc = GetParam();
  Sequential model = make_mlp(tc.input_dim, tc.hidden, tc.classes);
  core::Rng rng(1234);
  model.init_params(rng);
  Matrix x(5, tc.input_dim);
  for (float& v : x.span()) v = float(rng.normal());
  std::vector<std::size_t> y(5);
  for (auto& label : y) label = std::size_t(rng.uniform_index(tc.classes));
  const auto loss = make_loss(tc.loss, tc.classes);
  // Probe every 3rd parameter to keep runtime sane across the sweep.
  const auto res = gradient_check(model, *loss, x, y, 1e-3f, 3);
  EXPECT_LE(res.max_violation, 1.0f)
      << tc.name << ": abs error " << res.max_abs_error;
  EXPECT_GT(res.checked, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    ArchitectureLossGrid, MlpGradCheck,
    ::testing::Values(
        GradCase{"tiny_ce", 4, {}, 3, "ce"},
        GradCase{"tiny_focal", 4, {}, 3, "focal"},
        GradCase{"one_hidden_ce", 6, {8}, 4, "ce"},
        GradCase{"one_hidden_balanced", 6, {8}, 4, "balanced"},
        GradCase{"two_hidden_ce", 8, {10, 6}, 5, "ce"},
        GradCase{"two_hidden_focal", 8, {10, 6}, 5, "focal"},
        GradCase{"two_hidden_ldam", 8, {10, 6}, 5, "ldam"},
        GradCase{"wide_ce", 12, {24}, 10, "ce"},
        GradCase{"deep_ce", 6, {8, 8, 8}, 3, "ce"},
        GradCase{"deep_balanced", 6, {8, 8, 8}, 3, "balanced"}),
    [](const ::testing::TestParamInfo<GradCase>& info) { return info.param.name; });

TEST(ConvGradCheck, MiniConvNetWithCrossEntropy) {
  Sequential model = make_mini_convnet(1, 4, 4, 3, 2);
  core::Rng rng(99);
  model.init_params(rng);
  Matrix x(3, 16);
  for (float& v : x.span()) v = float(rng.normal());
  const std::vector<std::size_t> y{0, 2, 1};
  CrossEntropyLoss loss;
  const auto res = gradient_check(model, loss, x, y, 1e-3f, 5);
  EXPECT_LE(res.max_violation, 1.0f) << "abs " << res.max_abs_error;
}

}  // namespace
}  // namespace fedwcm::nn
