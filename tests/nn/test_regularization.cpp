// Dropout and LayerNorm: mask semantics, normalization algebra, exact
// gradients through the coupled row reductions.
#include "fedwcm/nn/regularization.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "fedwcm/nn/grad_check.hpp"
#include "fedwcm/nn/linear.hpp"
#include "fedwcm/nn/loss.hpp"
#include "fedwcm/nn/sequential.hpp"

namespace fedwcm::nn {
namespace {

TEST(Dropout, EvalModeIsIdentity) {
  Dropout drop(0.5f, 7);
  drop.set_training(false);
  Matrix in(2, 4, 3.0f);
  Matrix out;
  drop.forward(in, out);
  for (std::size_t i = 0; i < in.size(); ++i)
    EXPECT_FLOAT_EQ(out.data()[i], 3.0f);
}

TEST(Dropout, TrainModeZeroesAboutRateAndRescales) {
  Dropout drop(0.25f, 11);
  Matrix in(64, 64, 1.0f);
  Matrix out;
  drop.forward(in, out);
  std::size_t zeros = 0;
  const float keep_scale = 1.0f / 0.75f;
  for (float v : out.span()) {
    if (v == 0.0f)
      ++zeros;
    else
      EXPECT_FLOAT_EQ(v, keep_scale);
  }
  const double rate = double(zeros) / double(in.size());
  EXPECT_NEAR(rate, 0.25, 0.03);
  // Inverted scaling keeps the expectation ~1.
  double mean = 0.0;
  for (float v : out.span()) mean += v;
  EXPECT_NEAR(mean / double(out.size()), 1.0, 0.05);
}

TEST(Dropout, BackwardRoutesThroughSameMask) {
  Dropout drop(0.5f, 13);
  Matrix in(1, 32, 2.0f);
  Matrix out, grad_in;
  drop.forward(in, out);
  Matrix grad_out(1, 32, 1.0f);
  drop.backward(grad_out, grad_in);
  for (std::size_t i = 0; i < 32; ++i) {
    if (out.data()[i] == 0.0f)
      EXPECT_FLOAT_EQ(grad_in.data()[i], 0.0f);
    else
      EXPECT_FLOAT_EQ(grad_in.data()[i], 2.0f);  // 1/(1-0.5)
  }
}

TEST(Dropout, InvalidRateRejected) {
  EXPECT_THROW(Dropout(1.0f), std::invalid_argument);
  EXPECT_THROW(Dropout(-0.1f), std::invalid_argument);
}

TEST(LayerNorm, NormalizesRowsToZeroMeanUnitVar) {
  LayerNorm ln(4);
  Matrix in(2, 4, std::vector<float>{1, 2, 3, 4, 10, 10, 30, 30});
  Matrix out;
  ln.forward(in, out);
  for (std::size_t r = 0; r < 2; ++r) {
    double mean = 0.0, var = 0.0;
    for (std::size_t j = 0; j < 4; ++j) mean += out(r, j);
    mean /= 4.0;
    for (std::size_t j = 0; j < 4; ++j) {
      const double d = out(r, j) - mean;
      var += d * d;
    }
    var /= 4.0;
    EXPECT_NEAR(mean, 0.0, 1e-5);
    EXPECT_NEAR(var, 1.0, 1e-3);
  }
}

TEST(LayerNorm, GammaBetaApplied) {
  LayerNorm ln(2);
  // gamma = [2, 2], beta = [1, -1].
  ln.set_params(std::vector<float>{2, 2, 1, -1});
  Matrix in(1, 2, std::vector<float>{0, 10});
  Matrix out;
  ln.forward(in, out);
  // Normalized row is [-1, 1] (two symmetric values).
  EXPECT_NEAR(out(0, 0), 2.0f * -1.0f + 1.0f, 1e-3f);
  EXPECT_NEAR(out(0, 1), 2.0f * 1.0f - 1.0f, 1e-3f);
}

TEST(LayerNorm, ParamRoundTripAndInit) {
  LayerNorm ln(3);
  EXPECT_EQ(ln.param_count(), 6u);
  ln.set_params(std::vector<float>{5, 6, 7, 8, 9, 10});
  std::vector<float> p(6);
  ln.copy_params_to(p);
  EXPECT_EQ(p, (std::vector<float>{5, 6, 7, 8, 9, 10}));
  core::Rng rng(1);
  ln.init_params(rng);
  ln.copy_params_to(p);
  EXPECT_EQ(p, (std::vector<float>{1, 1, 1, 0, 0, 0}));
}

TEST(LayerNorm, GradCheckThroughFullModel) {
  Sequential model;
  model.add(std::make_unique<Linear>(5, 6));
  model.add(std::make_unique<LayerNorm>(6));
  model.add(std::make_unique<Linear>(6, 3));
  core::Rng rng(17);
  model.init_params(rng);
  Matrix x(4, 5);
  for (float& v : x.span()) v = float(rng.normal());
  const std::vector<std::size_t> y{0, 2, 1, 1};
  CrossEntropyLoss loss;
  const auto res = gradient_check(model, loss, x, y, 1e-3f, 1);
  EXPECT_LE(res.max_violation, 1.0f) << "abs " << res.max_abs_error;
}

TEST(LayerNorm, CloneCopiesParams) {
  LayerNorm ln(2);
  ln.set_params(std::vector<float>{3, 4, 5, 6});
  auto copy = ln.clone();
  std::vector<float> p(4);
  copy->copy_params_to(p);
  EXPECT_EQ(p, (std::vector<float>{3, 4, 5, 6}));
}

}  // namespace
}  // namespace fedwcm::nn
