// Losses: values against hand computation, gradients against finite
// differences, and the long-tail-specific semantics (focal down-weighting,
// balanced-softmax prior shift, LDAM margins).
#include "fedwcm/nn/loss.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace fedwcm::nn {
namespace {

/// Finite-difference gradient of a loss w.r.t. logits.
Matrix numeric_dlogits(const Loss& loss, Matrix logits,
                       std::span<const std::size_t> labels, float eps = 1e-3f) {
  Matrix num(logits.rows(), logits.cols());
  Matrix scratch;
  for (std::size_t i = 0; i < logits.size(); ++i) {
    const float orig = logits.data()[i];
    logits.data()[i] = orig + eps;
    const float up = loss.compute(logits, labels, scratch);
    logits.data()[i] = orig - eps;
    const float down = loss.compute(logits, labels, scratch);
    logits.data()[i] = orig;
    num.data()[i] = (up - down) / (2 * eps);
  }
  return num;
}

void expect_grad_matches(const Loss& loss, const Matrix& logits,
                         std::span<const std::size_t> labels, float tol = 2e-3f) {
  Matrix analytic;
  loss.compute(logits, labels, analytic);
  const Matrix numeric = numeric_dlogits(loss, logits, labels);
  for (std::size_t i = 0; i < logits.size(); ++i)
    EXPECT_NEAR(analytic.data()[i], numeric.data()[i], tol) << "coord " << i;
}

Matrix test_logits() {
  return Matrix(3, 4,
                std::vector<float>{0.5f, -1.0f, 2.0f, 0.0f, 1.0f, 1.0f, 1.0f, 1.0f,
                                   -2.0f, 0.3f, 0.1f, 1.2f});
}

TEST(CrossEntropy, ValueMatchesHandComputation) {
  CrossEntropyLoss ce;
  Matrix logits(1, 2, std::vector<float>{0.0f, 0.0f});
  Matrix d;
  const std::vector<std::size_t> y{0};
  EXPECT_NEAR(ce.compute(logits, y, d), std::log(2.0f), 1e-5f);
  // Gradient: p - onehot = [0.5 - 1, 0.5] / batch(1).
  EXPECT_NEAR(d(0, 0), -0.5f, 1e-5f);
  EXPECT_NEAR(d(0, 1), 0.5f, 1e-5f);
}

TEST(CrossEntropy, GradientMatchesFiniteDifference) {
  CrossEntropyLoss ce;
  const std::vector<std::size_t> y{2, 0, 3};
  expect_grad_matches(ce, test_logits(), y);
}

TEST(CrossEntropy, MeanReductionOverBatch) {
  CrossEntropyLoss ce;
  Matrix one(1, 2, std::vector<float>{1.0f, 0.0f});
  Matrix two(2, 2, std::vector<float>{1.0f, 0.0f, 1.0f, 0.0f});
  Matrix d;
  const std::vector<std::size_t> y1{0}, y2{0, 0};
  EXPECT_NEAR(ce.compute(one, y1, d), ce.compute(two, y2, d), 1e-6f);
}

TEST(CrossEntropy, InvalidLabelThrows) {
  CrossEntropyLoss ce;
  Matrix logits(1, 2);
  Matrix d;
  const std::vector<std::size_t> bad{5};
  EXPECT_THROW(ce.compute(logits, bad, d), std::invalid_argument);
}

TEST(Focal, ReducesToCrossEntropyAtGammaZero) {
  FocalLoss focal(0.0f);
  CrossEntropyLoss ce;
  const Matrix logits = test_logits();
  const std::vector<std::size_t> y{1, 2, 3};
  Matrix df, dc;
  EXPECT_NEAR(focal.compute(logits, y, df), ce.compute(logits, y, dc), 1e-4f);
  for (std::size_t i = 0; i < logits.size(); ++i)
    EXPECT_NEAR(df.data()[i], dc.data()[i], 1e-4f);
}

TEST(Focal, DownWeightsEasyExamples) {
  FocalLoss focal(2.0f);
  CrossEntropyLoss ce;
  // Easy example: target logit much larger.
  Matrix easy(1, 2, std::vector<float>{5.0f, 0.0f});
  Matrix d;
  const std::vector<std::size_t> y{0};
  const float f = focal.compute(easy, y, d);
  const float c = ce.compute(easy, y, d);
  EXPECT_LT(f, c * 0.1f);  // focal shrinks confident-correct loss hard
}

TEST(Focal, GradientMatchesFiniteDifference) {
  FocalLoss focal(2.0f);
  const std::vector<std::size_t> y{2, 0, 3};
  expect_grad_matches(focal, test_logits(), y);
}

TEST(BalancedSoftmax, PrefersRareClassesAtEqualLogits) {
  // Counts heavily skewed to class 0; equal logits should give *larger* loss
  // for predicting the rare class 1 under plain CE, but balanced softmax
  // compensates by shifting class-0 logits up (so its gradient pushes class 1
  // harder).
  BalancedSoftmaxLoss bal({90.0f, 10.0f});
  CrossEntropyLoss ce;
  Matrix logits(1, 2, std::vector<float>{0.0f, 0.0f});
  Matrix db, dc;
  const std::vector<std::size_t> y{1};
  const float lb = bal.compute(logits, y, db);
  const float lc = ce.compute(logits, y, dc);
  EXPECT_GT(lb, lc);  // rare-class sample is penalized more -> stronger pull
  EXPECT_LT(db(0, 1), dc(0, 1));  // stronger negative gradient on the target
}

TEST(BalancedSoftmax, GradientMatchesFiniteDifference) {
  BalancedSoftmaxLoss bal({50.0f, 30.0f, 15.0f, 5.0f});
  const std::vector<std::size_t> y{3, 0, 1};
  expect_grad_matches(bal, test_logits(), y);
}

TEST(BalancedSoftmax, HandlesZeroCounts) {
  BalancedSoftmaxLoss bal({10.0f, 0.0f});
  Matrix logits(1, 2, std::vector<float>{0.0f, 0.0f});
  Matrix d;
  const std::vector<std::size_t> y{1};
  const float l = bal.compute(logits, y, d);
  EXPECT_TRUE(std::isfinite(l));
}

TEST(Ldam, MarginsLargerForRareClasses) {
  LdamLoss ldam({1000.0f, 10.0f}, 0.5f, 1.0f);
  // With equal logits, the rare class (1) has a larger margin, so a sample of
  // class 1 incurs a larger loss than one of class 0.
  Matrix logits(1, 2, std::vector<float>{0.0f, 0.0f});
  Matrix d;
  const std::vector<std::size_t> y0{0}, y1{1};
  const float l0 = ldam.compute(logits, y0, d);
  const float l1 = ldam.compute(logits, y1, d);
  EXPECT_GT(l1, l0);
}

TEST(Ldam, GradientMatchesFiniteDifference) {
  LdamLoss ldam({40.0f, 30.0f, 20.0f, 10.0f}, 0.5f, 2.0f);
  const std::vector<std::size_t> y{1, 2, 0};
  expect_grad_matches(ldam, test_logits(), y, 5e-3f);
}

TEST(Losses, CloneBehavesIdentically) {
  BalancedSoftmaxLoss bal({5.0f, 2.0f, 1.0f, 0.5f});
  auto clone = bal.clone();
  const Matrix logits = test_logits();
  const std::vector<std::size_t> y{0, 1, 2};
  Matrix d1, d2;
  EXPECT_FLOAT_EQ(bal.compute(logits, y, d1), clone->compute(logits, y, d2));
}

}  // namespace
}  // namespace fedwcm::nn
