// Convolution / pooling: forward against hand-computed stencils and backward
// against finite differences through a one-layer net.
#include "fedwcm/nn/conv.hpp"

#include <gtest/gtest.h>

#include "fedwcm/nn/grad_check.hpp"
#include "fedwcm/nn/loss.hpp"
#include "fedwcm/nn/sequential.hpp"

namespace fedwcm::nn {
namespace {

TEST(Conv2d, IdentityKernelReproducesInput) {
  // 1x3x3 input, 1 output channel, 3x3 kernel = delta at center, pad 1.
  Conv2d conv(1, 3, 3, 1, 3, 1);
  std::vector<float> params(conv.param_count(), 0.0f);
  params[4] = 1.0f;  // center of the 3x3 kernel
  conv.set_params(params);
  Matrix in(1, 9, std::vector<float>{1, 2, 3, 4, 5, 6, 7, 8, 9});
  Matrix out;
  conv.forward(in, out);
  ASSERT_EQ(out.cols(), 9u);
  for (std::size_t i = 0; i < 9; ++i) EXPECT_FLOAT_EQ(out.data()[i], in.data()[i]);
}

TEST(Conv2d, SumKernelComputesNeighborhoodSums) {
  Conv2d conv(1, 3, 3, 1, 3, 1);
  std::vector<float> params(conv.param_count(), 0.0f);
  for (int i = 0; i < 9; ++i) params[i] = 1.0f;  // all-ones kernel, zero bias
  conv.set_params(params);
  Matrix in(1, 9, std::vector<float>(9, 1.0f));
  Matrix out;
  conv.forward(in, out);
  // Corner sees 4 ones, edge 6, center 9.
  EXPECT_FLOAT_EQ(out.data()[0], 4.0f);
  EXPECT_FLOAT_EQ(out.data()[1], 6.0f);
  EXPECT_FLOAT_EQ(out.data()[4], 9.0f);
}

TEST(Conv2d, BiasIsAddedPerChannel) {
  Conv2d conv(1, 2, 2, 2, 3, 1);
  std::vector<float> params(conv.param_count(), 0.0f);
  params[conv.param_count() - 2] = 1.5f;  // bias of channel 0
  params[conv.param_count() - 1] = -2.0f;
  conv.set_params(params);
  Matrix in(1, 4, std::vector<float>{1, 1, 1, 1});
  Matrix out;
  conv.forward(in, out);
  EXPECT_FLOAT_EQ(out.data()[0], 1.5f);
  EXPECT_FLOAT_EQ(out.data()[4], -2.0f);
}

TEST(Conv2d, OutputShape) {
  Conv2d same(3, 8, 8, 5, 3, 1);
  EXPECT_EQ(same.output_features(0), 5u * 8u * 8u);
  Conv2d valid(1, 8, 8, 2, 3, 0);
  EXPECT_EQ(valid.out_height(), 6u);
  EXPECT_EQ(valid.out_width(), 6u);
}

TEST(Conv2d, GradientMatchesFiniteDifference) {
  Sequential model;
  model.add(std::make_unique<Conv2d>(1, 4, 4, 2, 3, 1));
  core::Rng rng(5);
  model.init_params(rng);
  Matrix x(3, 16);
  for (float& v : x.span()) v = float(rng.normal());
  const std::vector<std::size_t> y{0, 1, 0};
  // Conv output is 2*4*4=32 wide; use CE over 32 pseudo-classes.
  CrossEntropyLoss loss;
  const auto res = gradient_check(model, loss, x, y, 1e-3f, 3);
  EXPECT_LE(res.max_violation, 1.0f) << "abs " << res.max_abs_error;
}

TEST(MaxPool2d, ForwardPicksMaxAndBackwardRoutes) {
  MaxPool2d pool(1, 4, 4);
  Matrix in(1, 16, 0.0f);
  in.data()[5] = 7.0f;   // inside pooling window (1,1) -> output (0,0)... window row0-1 col2-3 etc.
  in.data()[10] = 3.0f;
  Matrix out;
  pool.forward(in, out);
  ASSERT_EQ(out.cols(), 4u);
  EXPECT_FLOAT_EQ(out(0, 0), 7.0f);
  EXPECT_FLOAT_EQ(out(0, 3), 3.0f);
  Matrix grad_out(1, 4, std::vector<float>{1, 2, 3, 4});
  Matrix grad_in;
  pool.backward(grad_out, grad_in);
  EXPECT_FLOAT_EQ(grad_in.data()[5], 1.0f);
  EXPECT_FLOAT_EQ(grad_in.data()[10], 4.0f);
  // All other positions get zero except the argmaxes of the other windows.
  float total = 0.0f;
  for (float v : grad_in.span()) total += v;
  EXPECT_FLOAT_EQ(total, 1.0f + 2.0f + 3.0f + 4.0f);
}

TEST(MaxPool2d, OddSizesRejected) {
  EXPECT_THROW(MaxPool2d(1, 3, 4), std::invalid_argument);
}

TEST(GlobalAvgPool, ForwardAveragesAndBackwardSpreads) {
  GlobalAvgPool gap(2, 2, 2);
  Matrix in(1, 8, std::vector<float>{1, 2, 3, 4, 10, 10, 10, 10});
  Matrix out;
  gap.forward(in, out);
  ASSERT_EQ(out.cols(), 2u);
  EXPECT_FLOAT_EQ(out(0, 0), 2.5f);
  EXPECT_FLOAT_EQ(out(0, 1), 10.0f);
  Matrix grad_out(1, 2, std::vector<float>{4, 8});
  Matrix grad_in;
  gap.backward(grad_out, grad_in);
  EXPECT_FLOAT_EQ(grad_in.data()[0], 1.0f);
  EXPECT_FLOAT_EQ(grad_in.data()[7], 2.0f);
}

}  // namespace
}  // namespace fedwcm::nn
