// Activation layers: forward values and backward masks.
#include "fedwcm/nn/activations.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace fedwcm::nn {
namespace {

TEST(ReLU, ForwardClampsNegatives) {
  ReLU relu;
  Matrix in(1, 4, std::vector<float>{-1, 0, 2, -3});
  Matrix out;
  relu.forward(in, out);
  EXPECT_FLOAT_EQ(out(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(out(0, 1), 0.0f);
  EXPECT_FLOAT_EQ(out(0, 2), 2.0f);
  EXPECT_FLOAT_EQ(out(0, 3), 0.0f);
}

TEST(ReLU, BackwardGatesGradient) {
  ReLU relu;
  Matrix in(1, 3, std::vector<float>{-1, 0.5f, 3});
  Matrix out, grad_in;
  relu.forward(in, out);
  Matrix grad_out(1, 3, std::vector<float>{10, 20, 30});
  relu.backward(grad_out, grad_in);
  EXPECT_FLOAT_EQ(grad_in(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(grad_in(0, 1), 20.0f);
  EXPECT_FLOAT_EQ(grad_in(0, 2), 30.0f);
}

TEST(LeakyReLU, ForwardAndBackwardSlope) {
  LeakyReLU lrelu(0.1f);
  Matrix in(1, 2, std::vector<float>{-2, 4});
  Matrix out, grad_in;
  lrelu.forward(in, out);
  EXPECT_FLOAT_EQ(out(0, 0), -0.2f);
  EXPECT_FLOAT_EQ(out(0, 1), 4.0f);
  Matrix grad_out(1, 2, std::vector<float>{1, 1});
  lrelu.backward(grad_out, grad_in);
  EXPECT_FLOAT_EQ(grad_in(0, 0), 0.1f);
  EXPECT_FLOAT_EQ(grad_in(0, 1), 1.0f);
}

TEST(Tanh, ForwardValuesAndDerivative) {
  Tanh tanh_layer;
  Matrix in(1, 2, std::vector<float>{0.0f, 1.0f});
  Matrix out, grad_in;
  tanh_layer.forward(in, out);
  EXPECT_FLOAT_EQ(out(0, 0), 0.0f);
  EXPECT_NEAR(out(0, 1), std::tanh(1.0f), 1e-6f);
  Matrix grad_out(1, 2, std::vector<float>{1, 1});
  tanh_layer.backward(grad_out, grad_in);
  EXPECT_FLOAT_EQ(grad_in(0, 0), 1.0f);  // 1 - tanh(0)^2
  const float t = std::tanh(1.0f);
  EXPECT_NEAR(grad_in(0, 1), 1.0f - t * t, 1e-6f);
}

TEST(Activations, HaveNoParameters) {
  ReLU relu;
  Tanh tanh_layer;
  EXPECT_EQ(relu.param_count(), 0u);
  EXPECT_EQ(tanh_layer.param_count(), 0u);
  EXPECT_EQ(relu.output_features(17), 17u);
}

TEST(Activations, CloneProducesSameBehaviour) {
  LeakyReLU original(0.2f);
  auto copy = original.clone();
  Matrix in(1, 1, std::vector<float>{-1});
  Matrix out1, out2;
  original.forward(in, out1);
  copy->forward(in, out2);
  EXPECT_FLOAT_EQ(out1(0, 0), out2(0, 0));
}

}  // namespace
}  // namespace fedwcm::nn
