// Property sweep over all losses x random logit batches: invariants that
// must hold for any classification loss in this library —
//  * non-negativity (all four are CE variants on valid distributions),
//  * gradient rows sum to ~0 for pure-softmax losses (shift invariance),
//  * the loss decreases along its own negative gradient (descent property),
//  * determinism of compute().
#include <gtest/gtest.h>

#include <cmath>

#include "fedwcm/core/rng.hpp"
#include "fedwcm/nn/loss.hpp"

namespace fedwcm::nn {
namespace {

struct LossCase {
  std::string name;
  std::size_t classes;
  std::uint64_t seed;
};

std::unique_ptr<Loss> build(const std::string& kind, std::size_t classes) {
  if (kind == "ce") return std::make_unique<CrossEntropyLoss>();
  if (kind == "focal") return std::make_unique<FocalLoss>(2.0f);
  std::vector<float> counts(classes);
  for (std::size_t c = 0; c < classes; ++c)
    counts[c] = 100.0f / float(c + 1);  // long-tailed prior
  if (kind == "balanced")
    return std::make_unique<BalancedSoftmaxLoss>(std::move(counts));
  return std::make_unique<LdamLoss>(std::move(counts), 0.5f, 3.0f);
}

class LossProperties : public ::testing::TestWithParam<LossCase> {
 protected:
  void make_batch(core::Matrix& logits, std::vector<std::size_t>& labels) {
    const LossCase& tc = GetParam();
    core::Rng rng(tc.seed);
    logits = core::Matrix(6, tc.classes);
    for (float& v : logits.span()) v = float(rng.normal(0.0, 2.0));
    labels.resize(6);
    for (auto& y : labels) y = std::size_t(rng.uniform_index(tc.classes));
  }
};

TEST_P(LossProperties, NonNegativeAndFinite) {
  core::Matrix logits, d;
  std::vector<std::size_t> y;
  make_batch(logits, y);
  const auto loss = build(GetParam().name, GetParam().classes);
  const float value = loss->compute(logits, y, d);
  EXPECT_GE(value, 0.0f);
  EXPECT_TRUE(std::isfinite(value));
  for (float v : d.span()) EXPECT_TRUE(std::isfinite(v));
}

TEST_P(LossProperties, GradientRowsSumToZero) {
  // Softmax-family losses are invariant to per-row logit shifts, so each
  // gradient row must sum to zero (exact for CE/balanced/LDAM; focal's
  // gradient has the same (delta - p) structure scaled per row).
  core::Matrix logits, d;
  std::vector<std::size_t> y;
  make_batch(logits, y);
  const auto loss = build(GetParam().name, GetParam().classes);
  loss->compute(logits, y, d);
  for (std::size_t r = 0; r < d.rows(); ++r) {
    double sum = 0.0;
    for (std::size_t c = 0; c < d.cols(); ++c) sum += double(d(r, c));
    EXPECT_NEAR(sum, 0.0, 1e-5) << "row " << r;
  }
}

TEST_P(LossProperties, DescentAlongNegativeGradient) {
  core::Matrix logits, d, scratch;
  std::vector<std::size_t> y;
  make_batch(logits, y);
  const auto loss = build(GetParam().name, GetParam().classes);
  const float before = loss->compute(logits, y, d);
  core::Matrix stepped = logits;
  const float eta = 0.1f;
  for (std::size_t i = 0; i < stepped.size(); ++i)
    stepped.data()[i] -= eta * d.data()[i];
  const float after = loss->compute(stepped, y, scratch);
  EXPECT_LT(after, before + 1e-6f) << GetParam().name;
}

TEST_P(LossProperties, ComputeIsDeterministic) {
  core::Matrix logits, d1, d2;
  std::vector<std::size_t> y;
  make_batch(logits, y);
  const auto loss = build(GetParam().name, GetParam().classes);
  const float a = loss->compute(logits, y, d1);
  const float b = loss->compute(logits, y, d2);
  EXPECT_FLOAT_EQ(a, b);
  for (std::size_t i = 0; i < d1.size(); ++i)
    EXPECT_FLOAT_EQ(d1.data()[i], d2.data()[i]);
}

std::vector<LossCase> loss_cases() {
  std::vector<LossCase> cases;
  std::uint64_t seed = 100;
  for (const char* name : {"ce", "focal", "balanced", "ldam"})
    for (std::size_t classes : {2u, 10u, 50u})
      cases.push_back({name, classes, seed++});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllLossesAllWidths, LossProperties,
                         ::testing::ValuesIn(loss_cases()),
                         [](const ::testing::TestParamInfo<LossCase>& info) {
                           return info.param.name + "_c" +
                                  std::to_string(info.param.classes);
                         });

}  // namespace
}  // namespace fedwcm::nn
