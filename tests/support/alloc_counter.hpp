#pragma once
// Allocation-counting API for the zero-allocation hot-path tests.
//
// The counting operator new/delete replacements live in obs/alloc_hook.cpp
// (the fedwcm_alloc_hook object library); this header forwards their counter
// under the historical test-facing name. Tests read the counter before and
// after a region to assert how many heap allocations it performed; behaviour
// is otherwise unchanged, so the hook is safe to link into the whole test
// binary.

#include <cstdint>

namespace fedwcm::testing {

/// Total number of successful global `operator new` (all variants) calls in
/// this process so far. Monotonic; diff two readings to count a region.
std::uint64_t allocation_count();

}  // namespace fedwcm::testing
