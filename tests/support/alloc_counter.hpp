#pragma once
// Allocation-counting hook for the zero-allocation hot-path tests.
//
// Linking alloc_counter.cpp into a binary replaces the global operator
// new/delete family with malloc-backed versions that bump a process-wide
// counter on every successful allocation. Tests read the counter before and
// after a region to assert how many heap allocations it performed; behaviour
// is otherwise unchanged, so the hook is safe to link into the whole test
// binary.

#include <cstdint>

namespace fedwcm::testing {

/// Total number of successful global `operator new` (all variants) calls in
/// this process so far. Monotonic; diff two readings to count a region.
std::uint64_t allocation_count();

}  // namespace fedwcm::testing
