#include "alloc_counter.hpp"

#include "fedwcm/obs/resource.hpp"

// The actual operator new/delete replacements live in obs/alloc_hook.cpp
// (linked into the test binary as the fedwcm_alloc_hook object library), so
// the test suite and `fedwcm_run --ledger` count allocations with one hook.
// This translation unit only keeps the historical test-facing API alive.

namespace fedwcm::testing {

std::uint64_t allocation_count() { return obs::alloc_counters().count; }

}  // namespace fedwcm::testing
