#include "alloc_counter.hpp"

#include <atomic>
#include <cstdlib>
#include <new>

// Counting replacements for the global allocation functions. Every variant
// funnels through counted_alloc/counted_free so the counter sees array,
// nothrow and over-aligned forms alike.

namespace {

std::atomic<std::uint64_t> g_allocations{0};

void* counted_alloc(std::size_t size) {
  // operator new must return a unique pointer even for size 0.
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p != nullptr) g_allocations.fetch_add(1, std::memory_order_relaxed);
  return p;
}

void* counted_alloc_aligned(std::size_t size, std::size_t align) {
  if (align < alignof(void*)) align = alignof(void*);
  void* p = nullptr;
  if (posix_memalign(&p, align, size == 0 ? align : size) != 0) return nullptr;
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  return p;
}

}  // namespace

namespace fedwcm::testing {

std::uint64_t allocation_count() {
  return g_allocations.load(std::memory_order_relaxed);
}

}  // namespace fedwcm::testing

void* operator new(std::size_t size) {
  void* p = counted_alloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}

void* operator new(std::size_t size, std::align_val_t align) {
  void* p = counted_alloc_aligned(size, std::size_t(align));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}

void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  return counted_alloc_aligned(size, std::size_t(align));
}

void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  return counted_alloc_aligned(size, std::size_t(align));
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
