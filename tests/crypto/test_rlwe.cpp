// RLWE additive HE: ring algebra, round-trip correctness, additive
// homomorphism over random vectors, noise-budget enforcement.
#include "fedwcm/crypto/rlwe.hpp"

#include <gtest/gtest.h>

namespace fedwcm::crypto {
namespace {

RlweParams small_params() {
  RlweParams p;
  p.n = 64;
  p.q = 1ULL << 40;
  p.t = 1ULL << 16;
  p.noise_bound = 4;
  return p;
}

TEST(RlweParams, Validation) {
  RlweParams bad = small_params();
  bad.n = 60;  // not a power of two
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = small_params();
  bad.t = bad.q;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  EXPECT_NO_THROW(small_params().validate());
  EXPECT_GT(RlweParams{}.max_additions(), 100u);  // default supports many clients
}

TEST(PolyAlgebra, AddSubInverse) {
  RlweContext ctx(small_params());
  core::Rng rng(1);
  Poly a(64), b(64);
  for (auto& v : a) v = rng.next_u64() % small_params().q;
  for (auto& v : b) v = rng.next_u64() % small_params().q;
  const Poly sum = ctx.poly_add(a, b);
  const Poly back = ctx.poly_sub(sum, b);
  EXPECT_EQ(back, a);
}

TEST(PolyAlgebra, NegacyclicWraparound) {
  RlweContext ctx(small_params());
  // x^{n-1} * x = x^n = -1.
  Poly a(64, 0), b(64, 0);
  a[63] = 1;
  b[1] = 1;
  const Poly prod = ctx.poly_mul(a, b);
  EXPECT_EQ(prod[0], small_params().q - 1);  // -1 mod q
  for (std::size_t i = 1; i < 64; ++i) EXPECT_EQ(prod[i], 0u);
}

TEST(PolyAlgebra, MulByOneIsIdentity) {
  RlweContext ctx(small_params());
  core::Rng rng(2);
  Poly a(64), one(64, 0);
  one[0] = 1;
  for (auto& v : a) v = rng.next_u64() % small_params().q;
  EXPECT_EQ(ctx.poly_mul(a, one), a);
}

TEST(Rlwe, EncryptDecryptRoundTrip) {
  RlweContext ctx(small_params());
  core::Rng rng(3);
  const SecretKey sk = ctx.generate_secret_key(rng);
  const PublicKey pk = ctx.generate_public_key(sk, rng);
  const std::vector<std::uint64_t> msg{0, 1, 42, 1000, 65535};
  const Ciphertext ct = ctx.encrypt(pk, msg, rng);
  EXPECT_EQ(ctx.decrypt(sk, ct, msg.size()), msg);
}

TEST(Rlwe, AdditiveHomomorphismRandomProperty) {
  RlweContext ctx(small_params());
  core::Rng rng(4);
  const SecretKey sk = ctx.generate_secret_key(rng);
  const PublicKey pk = ctx.generate_public_key(sk, rng);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<std::uint64_t> a(16), b(16), expect(16);
    for (std::size_t i = 0; i < 16; ++i) {
      a[i] = rng.uniform_index(1000);
      b[i] = rng.uniform_index(1000);
      expect[i] = a[i] + b[i];
    }
    const Ciphertext sum = ctx.add(ctx.encrypt(pk, a, rng), ctx.encrypt(pk, b, rng));
    EXPECT_EQ(ctx.decrypt(sk, sum, 16), expect) << "trial " << trial;
  }
}

TEST(Rlwe, ManyAdditionsWithinBudget) {
  RlweContext ctx(small_params());
  core::Rng rng(5);
  const SecretKey sk = ctx.generate_secret_key(rng);
  const PublicKey pk = ctx.generate_public_key(sk, rng);
  const std::size_t adds = std::min<std::size_t>(20, small_params().max_additions());
  std::vector<std::uint64_t> ones{1, 2, 3};
  Ciphertext acc = ctx.encrypt(pk, ones, rng);
  for (std::size_t i = 1; i < adds; ++i) acc = ctx.add(acc, ctx.encrypt(pk, ones, rng));
  const auto out = ctx.decrypt(sk, acc, 3);
  EXPECT_EQ(out[0], adds * 1);
  EXPECT_EQ(out[1], adds * 2);
  EXPECT_EQ(out[2], adds * 3);
}

TEST(Rlwe, NoiseBudgetEnforced) {
  RlweParams p = small_params();
  p.t = 1ULL << 28;  // shrink delta so max_additions is tiny
  RlweContext ctx(p);
  core::Rng rng(6);
  const SecretKey sk = ctx.generate_secret_key(rng);
  const PublicKey pk = ctx.generate_public_key(sk, rng);
  const std::vector<std::uint64_t> v{1};
  Ciphertext acc = ctx.encrypt(pk, v, rng);
  EXPECT_THROW(
      {
        for (std::size_t i = 0; i < p.max_additions() + 2; ++i)
          acc = ctx.add(acc, ctx.encrypt(pk, v, rng));
      },
      std::invalid_argument);
}

TEST(Rlwe, RejectsOversizedInputs) {
  RlweContext ctx(small_params());
  core::Rng rng(7);
  const SecretKey sk = ctx.generate_secret_key(rng);
  const PublicKey pk = ctx.generate_public_key(sk, rng);
  std::vector<std::uint64_t> too_many(65, 1);
  EXPECT_THROW(ctx.encrypt(pk, too_many, rng), std::invalid_argument);
  std::vector<std::uint64_t> too_big{1ULL << 20};  // >= t
  EXPECT_THROW(ctx.encrypt(pk, too_big, rng), std::invalid_argument);
}

TEST(Rlwe, CiphertextSizeConstantInMessageLength) {
  RlweContext ctx(small_params());
  core::Rng rng(8);
  const SecretKey sk = ctx.generate_secret_key(rng);
  const PublicKey pk = ctx.generate_public_key(sk, rng);
  const Ciphertext small = ctx.encrypt(pk, std::vector<std::uint64_t>{1}, rng);
  const Ciphertext big =
      ctx.encrypt(pk, std::vector<std::uint64_t>(60, 9), rng);
  EXPECT_EQ(small.byte_size(), big.byte_size());  // the Table 6 property
}

TEST(Rlwe, WrongKeyFailsToDecrypt) {
  RlweContext ctx(small_params());
  core::Rng rng(9);
  const SecretKey sk = ctx.generate_secret_key(rng);
  const PublicKey pk = ctx.generate_public_key(sk, rng);
  const SecretKey other = ctx.generate_secret_key(rng);
  const std::vector<std::uint64_t> msg{1234, 5678};
  const Ciphertext ct = ctx.encrypt(pk, msg, rng);
  EXPECT_NE(ctx.decrypt(other, ct, 2), msg);
}

}  // namespace
}  // namespace fedwcm::crypto
