// The §5.5 HE distribution-gathering protocol: the server only ever adds
// ciphertexts, yet the decrypted aggregate equals the plaintext sum.
#include "fedwcm/crypto/protocol.hpp"

#include <gtest/gtest.h>

namespace fedwcm::crypto {
namespace {

RlweContext test_ctx() {
  RlweParams p;
  p.n = 128;
  p.q = 1ULL << 45;
  p.t = 1ULL << 22;
  p.noise_bound = 4;
  return RlweContext(p);
}

TEST(Protocol, AggregateEqualsPlaintextSum) {
  const RlweContext ctx = test_ctx();
  const std::vector<std::vector<std::uint64_t>> clients{
      {10, 0, 5, 3},
      {0, 7, 5, 1},
      {2, 2, 2, 2},
  };
  const auto global = gather_global_distribution(ctx, clients, /*seed=*/99);
  EXPECT_EQ(global, (std::vector<std::uint64_t>{12, 9, 12, 6}));
}

TEST(Protocol, DeterministicForSeed) {
  const RlweContext ctx = test_ctx();
  const std::vector<std::vector<std::uint64_t>> clients{{1, 2}, {3, 4}};
  EXPECT_EQ(gather_global_distribution(ctx, clients, 5),
            gather_global_distribution(ctx, clients, 5));
}

TEST(Protocol, StatsReportTable6Quantities) {
  const RlweContext ctx = test_ctx();
  std::vector<std::vector<std::uint64_t>> clients(10,
                                                  std::vector<std::uint64_t>(20, 3));
  ProtocolStats stats;
  const auto global = gather_global_distribution(ctx, clients, 7, &stats);
  EXPECT_EQ(global.size(), 20u);
  EXPECT_EQ(global[0], 30u);
  EXPECT_EQ(stats.clients, 10u);
  EXPECT_EQ(stats.classes, 20u);
  EXPECT_EQ(stats.plaintext_bytes_per_client, 20u * 8u);
  // Ciphertext = 2 polynomials of n u64 coefficients.
  EXPECT_EQ(stats.ciphertext_bytes_per_client, 2u * 128u * 8u);
  EXPECT_EQ(stats.total_upload_bytes, 10u * 2u * 128u * 8u);
  EXPECT_GE(stats.encrypt_seconds_per_client, 0.0);
}

TEST(Protocol, CiphertextSizeIndependentOfClassCount) {
  const RlweContext ctx = test_ctx();
  ProtocolStats s10, s100;
  gather_global_distribution(
      ctx, std::vector<std::vector<std::uint64_t>>(3, std::vector<std::uint64_t>(10, 1)),
      1, &s10);
  gather_global_distribution(
      ctx,
      std::vector<std::vector<std::uint64_t>>(3, std::vector<std::uint64_t>(100, 1)),
      1, &s100);
  // The paper's Table 6 headline: plaintext grows linearly, ciphertext ~flat.
  EXPECT_GT(s100.plaintext_bytes_per_client, s10.plaintext_bytes_per_client * 9);
  EXPECT_EQ(s100.ciphertext_bytes_per_client, s10.ciphertext_bytes_per_client);
}

TEST(Protocol, ManyClientsAggregateCorrectly) {
  const RlweContext ctx = test_ctx();
  const std::size_t clients = 50;
  std::vector<std::vector<std::uint64_t>> counts(clients);
  std::vector<std::uint64_t> expect(8, 0);
  for (std::size_t k = 0; k < clients; ++k) {
    counts[k].resize(8);
    for (std::size_t c = 0; c < 8; ++c) {
      counts[k][c] = (k * 7 + c * 3) % 50;
      expect[c] += counts[k][c];
    }
  }
  EXPECT_EQ(gather_global_distribution(ctx, counts, 33), expect);
}

TEST(Protocol, RaggedInputRejected) {
  const RlweContext ctx = test_ctx();
  const std::vector<std::vector<std::uint64_t>> bad{{1, 2}, {1, 2, 3}};
  EXPECT_THROW(gather_global_distribution(ctx, bad, 1), std::invalid_argument);
  EXPECT_THROW(gather_global_distribution(ctx, {}, 1), std::invalid_argument);
}

}  // namespace
}  // namespace fedwcm::crypto
