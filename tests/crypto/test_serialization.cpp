// Ciphertext wire format: round trips, cross-scheme compatibility with the
// protocol (serialize -> deserialize -> add -> decrypt), corruption checks.
#include <gtest/gtest.h>

#include <sstream>

#include "fedwcm/crypto/rlwe.hpp"

namespace fedwcm::crypto {
namespace {

RlweContext small_ctx() {
  RlweParams p;
  p.n = 64;
  p.q = 1ULL << 40;
  p.t = 1ULL << 16;
  p.noise_bound = 4;
  return RlweContext(p);
}

TEST(CiphertextWire, RoundTripPreservesDecryption) {
  const RlweContext ctx = small_ctx();
  core::Rng rng(1);
  const SecretKey sk = ctx.generate_secret_key(rng);
  const PublicKey pk = ctx.generate_public_key(sk, rng);
  const std::vector<std::uint64_t> msg{7, 0, 65535, 42};
  const Ciphertext ct = ctx.encrypt(pk, msg, rng);

  std::stringstream wire;
  ctx.serialize(ct, wire);
  const Ciphertext restored = ctx.deserialize(wire);
  EXPECT_EQ(restored.additions, ct.additions);
  EXPECT_EQ(ctx.decrypt(sk, restored, msg.size()), msg);
}

TEST(CiphertextWire, UploadedCiphertextsStillAddHomomorphically) {
  // The server-side view: receive serialized uploads, add, decrypt at the
  // key holder — exactly the protocol's wire path.
  const RlweContext ctx = small_ctx();
  core::Rng rng(2);
  const SecretKey sk = ctx.generate_secret_key(rng);
  const PublicKey pk = ctx.generate_public_key(sk, rng);

  std::stringstream wire_a, wire_b;
  ctx.serialize(ctx.encrypt(pk, std::vector<std::uint64_t>{5, 10}, rng), wire_a);
  ctx.serialize(ctx.encrypt(pk, std::vector<std::uint64_t>{3, 4}, rng), wire_b);

  const Ciphertext sum =
      ctx.add(ctx.deserialize(wire_a), ctx.deserialize(wire_b));
  EXPECT_EQ(ctx.decrypt(sk, sum, 2), (std::vector<std::uint64_t>{8, 14}));
}

TEST(CiphertextWire, WrongRingDegreeRejected) {
  const RlweContext small = small_ctx();
  RlweParams big_params;
  big_params.n = 128;
  big_params.q = 1ULL << 40;
  big_params.t = 1ULL << 16;
  big_params.noise_bound = 4;
  const RlweContext big(big_params);

  core::Rng rng(3);
  const SecretKey sk = small.generate_secret_key(rng);
  const PublicKey pk = small.generate_public_key(sk, rng);
  std::stringstream wire;
  small.serialize(small.encrypt(pk, std::vector<std::uint64_t>{1}, rng), wire);
  EXPECT_THROW(big.deserialize(wire), std::runtime_error);
}

TEST(CiphertextWire, TruncatedStreamRejected) {
  const RlweContext ctx = small_ctx();
  core::Rng rng(4);
  const SecretKey sk = ctx.generate_secret_key(rng);
  const PublicKey pk = ctx.generate_public_key(sk, rng);
  std::stringstream wire;
  ctx.serialize(ctx.encrypt(pk, std::vector<std::uint64_t>{1}, rng), wire);
  std::string bytes = wire.str();
  bytes.resize(bytes.size() / 2);
  std::stringstream truncated(bytes);
  EXPECT_THROW(ctx.deserialize(truncated), std::runtime_error);
}

TEST(CiphertextWire, OutOfRangeCoefficientRejected) {
  const RlweContext ctx = small_ctx();
  core::Rng rng(5);
  const SecretKey sk = ctx.generate_secret_key(rng);
  const PublicKey pk = ctx.generate_public_key(sk, rng);
  std::stringstream wire;
  ctx.serialize(ctx.encrypt(pk, std::vector<std::uint64_t>{1}, rng), wire);
  std::string bytes = wire.str();
  // Corrupt the first coefficient (after the 16-byte header) to ~2^63 > q.
  bytes[16 + 7] = char(0x80);
  std::stringstream corrupted(bytes);
  EXPECT_THROW(ctx.deserialize(corrupted), std::invalid_argument);
}

}  // namespace
}  // namespace fedwcm::crypto
