// Fused ParamVector kernels vs their unfused references: the fused span ops
// powering aggregation and momentum updates must produce bitwise-identical
// results in both kernel modes (they perform the same per-element FP chain,
// fused just traverses memory once).
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "fedwcm/core/param_vector.hpp"
#include "fedwcm/core/rng.hpp"
#include "fedwcm/core/tensor.hpp"

namespace fedwcm::core {
namespace {

struct ModeGuard {
  KernelMode saved = kernel_mode();
  ~ModeGuard() { set_kernel_mode(saved); }
};

ParamVector random_pv(std::size_t n, Rng& rng) {
  ParamVector v(n);
  for (float& x : v) x = float(rng.normal());
  return v;
}

void expect_bitwise_equal(const ParamVector& a, const ParamVector& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    std::uint32_t ba, bb;
    std::memcpy(&ba, &a[i], 4);
    std::memcpy(&bb, &b[i], 4);
    ASSERT_EQ(ba, bb) << "index " << i << ": " << a[i] << " vs " << b[i];
  }
}

// Odd length exercises any vector-width tail handling.
constexpr std::size_t kN = 1031;

TEST(FusedPv, ScaleAddMatchesReference) {
  ModeGuard guard;
  Rng rng(3);
  const ParamVector x = random_pv(kN, rng);
  const ParamVector y0 = random_pv(kN, rng);
  ParamVector fused = y0, reference = y0;
  set_kernel_mode(KernelMode::kBlocked);
  pv::scale_add(0.7f, x, -1.3f, fused);
  set_kernel_mode(KernelMode::kNaive);
  pv::scale_add(0.7f, x, -1.3f, reference);
  expect_bitwise_equal(fused, reference);
}

TEST(FusedPv, ScaleIntoMatchesReference) {
  ModeGuard guard;
  Rng rng(5);
  const ParamVector x = random_pv(kN, rng);
  ParamVector fused, reference;
  set_kernel_mode(KernelMode::kBlocked);
  pv::scale_into(-0.25f, x, fused);
  set_kernel_mode(KernelMode::kNaive);
  pv::scale_into(-0.25f, x, reference);
  expect_bitwise_equal(fused, reference);
}

TEST(FusedPv, BlendIntoMatchesReferenceIncludingAliasing) {
  ModeGuard guard;
  Rng rng(7);
  const ParamVector a = random_pv(kN, rng);
  const ParamVector b = random_pv(kN, rng);
  ParamVector fused, reference;
  set_kernel_mode(KernelMode::kBlocked);
  pv::blend_into(0.1f, a, 0.9f, b, fused);
  set_kernel_mode(KernelMode::kNaive);
  pv::blend_into(0.1f, a, 0.9f, b, reference);
  expect_bitwise_equal(fused, reference);

  // FedCM/FedWCM write the blend back into one of its inputs (v aliases g):
  // both modes must support out == a.
  ParamVector fused_alias = a, reference_alias = a;
  set_kernel_mode(KernelMode::kBlocked);
  pv::blend_into(0.1f, fused_alias, 0.9f, b, fused_alias);
  set_kernel_mode(KernelMode::kNaive);
  pv::blend_into(0.1f, reference_alias, 0.9f, b, reference_alias);
  expect_bitwise_equal(fused_alias, reference_alias);
  expect_bitwise_equal(fused_alias, fused);
}

TEST(FusedPv, WeightedSumMatchesReference) {
  ModeGuard guard;
  Rng rng(11);
  std::vector<ParamVector> inputs;
  for (int i = 0; i < 5; ++i) inputs.push_back(random_pv(kN, rng));
  std::vector<const ParamVector*> xs;
  for (const auto& v : inputs) xs.push_back(&v);
  const std::vector<float> w = {0.4f, 0.1f, 0.25f, 0.05f, 0.2f};
  ParamVector fused, reference;
  set_kernel_mode(KernelMode::kBlocked);
  pv::weighted_sum(w, xs, fused);
  set_kernel_mode(KernelMode::kNaive);
  pv::weighted_sum(w, xs, reference);
  expect_bitwise_equal(fused, reference);
}

TEST(FusedPv, DotNormsMatchesSeparateKernels) {
  ModeGuard guard;
  Rng rng(13);
  const ParamVector a = random_pv(kN, rng);
  const ParamVector b = random_pv(kN, rng);
  for (const KernelMode mode : {KernelMode::kBlocked, KernelMode::kNaive}) {
    set_kernel_mode(mode);
    const pv::DotNorms dn = pv::dot_norms(a, b);
    EXPECT_EQ(dn.dot, pv::dot(a, b));
    EXPECT_EQ(dn.a_norm_sq, pv::l2_norm_sq(a));
    EXPECT_EQ(dn.b_norm_sq, pv::l2_norm_sq(b));
  }
}

TEST(FusedPv, CosineConsistentAcrossModes) {
  ModeGuard guard;
  Rng rng(17);
  const ParamVector a = random_pv(kN, rng);
  const ParamVector b = random_pv(kN, rng);
  set_kernel_mode(KernelMode::kBlocked);
  const float fused = pv::cosine(a, b);
  set_kernel_mode(KernelMode::kNaive);
  const float reference = pv::cosine(a, b);
  EXPECT_EQ(fused, reference);
}

}  // namespace
}  // namespace fedwcm::core
