// Checkpoint container: atomic commit semantics, header validation
// (magic/version/fingerprint), truncation and trailing-garbage rejection.
#include "fedwcm/core/checkpoint.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

namespace fedwcm::core {
namespace {

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

void write_simple(const std::string& path, const std::string& fingerprint,
                  std::uint64_t payload) {
  CheckpointWriter w(path, fingerprint);
  w.body().write_u64(payload);
  w.commit();
}

TEST(Checkpoint, RoundTrip) {
  const std::string path = temp_path("ckpt_roundtrip.bin");
  write_simple(path, "fp-a", 42);
  CheckpointReader r(path, "fp-a");
  EXPECT_EQ(r.body().read_u64(), 42u);
  r.finish();
  std::remove(path.c_str());
}

TEST(Checkpoint, ExistsOnlyAfterCommit) {
  const std::string path = temp_path("ckpt_exists.bin");
  std::remove(path.c_str());
  EXPECT_FALSE(checkpoint_exists(path));
  {
    CheckpointWriter w(path, "fp");
    w.body().write_u32(1);
    // Never committed: the temporary must be cleaned up and the target
    // never appear.
  }
  EXPECT_FALSE(checkpoint_exists(path));
  EXPECT_FALSE(checkpoint_exists(path + ".tmp"));
  write_simple(path, "fp", 7);
  EXPECT_TRUE(checkpoint_exists(path));
  std::remove(path.c_str());
}

TEST(Checkpoint, AbandonedWriterLeavesPreviousCheckpointIntact) {
  const std::string path = temp_path("ckpt_crash.bin");
  write_simple(path, "fp", 1);
  {
    // Simulated crash mid-write: a writer that dies before commit must not
    // disturb the committed file.
    CheckpointWriter w(path, "fp");
    w.body().write_u64(99);
  }
  CheckpointReader r(path, "fp");
  EXPECT_EQ(r.body().read_u64(), 1u);
  r.finish();
  std::remove(path.c_str());
}

TEST(Checkpoint, FingerprintMismatchRejected) {
  const std::string path = temp_path("ckpt_fp.bin");
  write_simple(path, "run-config-a", 3);
  EXPECT_THROW(CheckpointReader(path, "run-config-b"), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Checkpoint, BadMagicRejected) {
  const std::string path = temp_path("ckpt_magic.bin");
  {
    std::ofstream os(path, std::ios::binary);
    BinaryWriter w(os);
    w.write_u32(0x12345678);  // not kCheckpointMagic
    w.write_u32(kCheckpointVersion);
    w.write_string("fp");
  }
  EXPECT_THROW(CheckpointReader(path, "fp"), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Checkpoint, WrongVersionRejected) {
  const std::string path = temp_path("ckpt_version.bin");
  {
    std::ofstream os(path, std::ios::binary);
    BinaryWriter w(os);
    w.write_u32(kCheckpointMagic);
    w.write_u32(kCheckpointVersion + 1);
    w.write_string("fp");
  }
  EXPECT_THROW(CheckpointReader(path, "fp"), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Checkpoint, MissingFileRejected) {
  EXPECT_THROW(CheckpointReader("/nonexistent/dir/ckpt.bin", "fp"),
               std::runtime_error);
}

TEST(Checkpoint, TruncatedBodyRejected) {
  const std::string path = temp_path("ckpt_trunc.bin");
  write_simple(path, "fp", 42);
  std::string bytes;
  {
    std::ifstream is(path, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(is), {});
  }
  {
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os.write(bytes.data(), std::streamsize(bytes.size() - 4));
  }
  CheckpointReader r(path, "fp");
  EXPECT_THROW(r.body().read_u64(), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Checkpoint, TrailingGarbageRejectedByFinish) {
  const std::string path = temp_path("ckpt_trail.bin");
  write_simple(path, "fp", 42);
  {
    std::ofstream os(path, std::ios::binary | std::ios::app);
    os.put('z');
  }
  CheckpointReader r(path, "fp");
  EXPECT_EQ(r.body().read_u64(), 42u);
  EXPECT_THROW(r.finish(), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Checkpoint, CommitReplacesPreviousAtomically) {
  const std::string path = temp_path("ckpt_replace.bin");
  write_simple(path, "fp", 1);
  write_simple(path, "fp", 2);
  CheckpointReader r(path, "fp");
  EXPECT_EQ(r.body().read_u64(), 2u);
  r.finish();
  EXPECT_FALSE(checkpoint_exists(path + ".tmp"));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace fedwcm::core
