// Parameter-vector arithmetic: the primitives every FL update rule is built
// from must be exact and size-checked.
#include "fedwcm/core/param_vector.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace fedwcm::core::pv {
namespace {

TEST(ParamVector, Axpy) {
  ParamVector x{1, 2, 3}, y{1, 1, 1};
  axpy(0.5f, x, y);
  EXPECT_FLOAT_EQ(y[0], 1.5f);
  EXPECT_FLOAT_EQ(y[2], 2.5f);
  ParamVector bad{1};
  EXPECT_THROW(axpy(1.0f, bad, y), std::invalid_argument);
}

TEST(ParamVector, SubAddBlend) {
  ParamVector a{4, 6}, b{1, 2};
  EXPECT_EQ(sub(a, b), (ParamVector{3, 4}));
  EXPECT_EQ(add(a, b), (ParamVector{5, 8}));
  // blend(alpha, a, beta, b) = alpha a + beta b — the Eq. 2/6 momentum mix.
  const ParamVector v = blend(0.1f, a, 0.9f, b);
  EXPECT_FLOAT_EQ(v[0], 0.1f * 4 + 0.9f * 1);
  EXPECT_FLOAT_EQ(v[1], 0.1f * 6 + 0.9f * 2);
}

TEST(ParamVector, AccumulateResizesOnFirstUse) {
  ParamVector acc;
  accumulate(acc, 0.5f, ParamVector{2, 4});
  accumulate(acc, 0.5f, ParamVector{6, 8});
  EXPECT_FLOAT_EQ(acc[0], 4.0f);
  EXPECT_FLOAT_EQ(acc[1], 6.0f);
  EXPECT_THROW(accumulate(acc, 1.0f, ParamVector{1}), std::invalid_argument);
}

TEST(ParamVector, ZeroAndScale) {
  ParamVector x{3, -4};
  scale(2.0f, x);
  EXPECT_FLOAT_EQ(x[0], 6.0f);
  zero(x);
  EXPECT_FLOAT_EQ(x[0], 0.0f);
  EXPECT_FLOAT_EQ(x[1], 0.0f);
  EXPECT_EQ(x.size(), 2u);
}

TEST(ParamVector, NormsAndDot) {
  ParamVector a{3, 4};
  EXPECT_FLOAT_EQ(l2_norm(a), 5.0f);
  EXPECT_FLOAT_EQ(l2_norm_sq(a), 25.0f);
  EXPECT_FLOAT_EQ(dot(a, ParamVector{1, 1}), 7.0f);
}

TEST(ParamVector, Cosine) {
  EXPECT_NEAR(cosine(ParamVector{1, 0}, ParamVector{1, 0}), 1.0f, 1e-6f);
  EXPECT_NEAR(cosine(ParamVector{1, 0}, ParamVector{0, 1}), 0.0f, 1e-6f);
  EXPECT_NEAR(cosine(ParamVector{1, 0}, ParamVector{-1, 0}), -1.0f, 1e-6f);
  // Zero vector convention.
  EXPECT_FLOAT_EQ(cosine(ParamVector{0, 0}, ParamVector{1, 0}), 0.0f);
}

}  // namespace
}  // namespace fedwcm::core::pv
