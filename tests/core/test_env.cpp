// Bench-scale env parsing.
#include "fedwcm/core/env.hpp"

#include <gtest/gtest.h>

#include <cstdlib>

namespace fedwcm::core {
namespace {

struct EnvGuard {
  explicit EnvGuard(const char* value) {
    if (value)
      setenv("FEDWCM_BENCH_SCALE", value, 1);
    else
      unsetenv("FEDWCM_BENCH_SCALE");
  }
  ~EnvGuard() { unsetenv("FEDWCM_BENCH_SCALE"); }
};

TEST(BenchScale, DefaultsWhenUnset) {
  EnvGuard g(nullptr);
  EXPECT_EQ(bench_scale_from_env(), BenchScale::kDefault);
}

TEST(BenchScale, ParsesKnownValuesCaseInsensitive) {
  {
    EnvGuard g("smoke");
    EXPECT_EQ(bench_scale_from_env(), BenchScale::kSmoke);
  }
  {
    EnvGuard g("PAPER");
    EXPECT_EQ(bench_scale_from_env(), BenchScale::kPaper);
  }
  {
    EnvGuard g("Default");
    EXPECT_EQ(bench_scale_from_env(), BenchScale::kDefault);
  }
}

TEST(BenchScale, UnknownFallsBackToDefault) {
  EnvGuard g("warpspeed");
  EXPECT_EQ(bench_scale_from_env(), BenchScale::kDefault);
}

TEST(BenchScale, ScaledCounts) {
  EXPECT_EQ(scaled(BenchScale::kDefault, 40), 40u);
  EXPECT_EQ(scaled(BenchScale::kSmoke, 40), 10u);
  EXPECT_EQ(scaled(BenchScale::kSmoke, 2), 1u);  // never zero
  EXPECT_EQ(scaled(BenchScale::kPaper, 40, 8), 320u);
}

TEST(BenchScale, ToString) {
  EXPECT_EQ(to_string(BenchScale::kSmoke), "smoke");
  EXPECT_EQ(to_string(BenchScale::kDefault), "default");
  EXPECT_EQ(to_string(BenchScale::kPaper), "paper");
}

}  // namespace
}  // namespace fedwcm::core
