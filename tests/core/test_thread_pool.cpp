// Thread-pool tests: completion, result ordering independence, exception
// propagation, and determinism of parallel_for writes into disjoint slots.
#include "fedwcm/core/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

namespace fedwcm::core {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  auto f = pool.submit([] { return 21 * 2; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, ManyTasksAllComplete) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 200; ++i)
    futures.push_back(pool.submit([&counter] { counter.fetch_add(1); }));
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ParallelFor, CoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(500);
  parallel_for(pool, 0, 500, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  int calls = 0;
  parallel_for(pool, 5, 5, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ParallelFor, DisjointSlotWritesAreDeterministic) {
  ThreadPool pool(4);
  std::vector<double> out_a(100), out_b(100);
  auto work = [](std::size_t i) { return double(i) * 1.5 + 1.0; };
  parallel_for(pool, 0, 100, [&](std::size_t i) { out_a[i] = work(i); });
  parallel_for(pool, 0, 100, [&](std::size_t i) { out_b[i] = work(i); });
  EXPECT_EQ(out_a, out_b);
}

TEST(ParallelFor, RethrowsWorkerException) {
  ThreadPool pool(3);
  EXPECT_THROW(parallel_for(pool, 0, 50,
                            [&](std::size_t i) {
                              if (i == 13) throw std::logic_error("unlucky");
                            }),
               std::logic_error);
}

TEST(ParallelFor, ChunkedRangesCoverOddSizesExactlyOnce) {
  // The grain-size fix hands out ~4x-num-threads chunks instead of one index
  // per task; coverage must stay exact for sizes that do not divide evenly
  // into chunks, including sizes smaller than the thread count.
  ThreadPool pool(4);
  for (const std::size_t n : {1u, 3u, 4u, 5u, 17u, 1000u, 10007u}) {
    std::vector<std::atomic<int>> hits(n);
    parallel_for(pool, 0, n, [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < n; ++i)
      ASSERT_EQ(hits[i].load(), 1) << "n=" << n << " index " << i;
  }
}

TEST(ParallelFor, OffsetRangeIsChunkedCorrectly) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(pool, 250, 1000, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < 1000; ++i)
    ASSERT_EQ(hits[i].load(), i >= 250 ? 1 : 0) << "index " << i;
}

TEST(SerialFor, MatchesParallelSemantics) {
  std::vector<int> order;
  serial_for(2, 6, [&](std::size_t i) { order.push_back(int(i)); });
  EXPECT_EQ(order, (std::vector<int>{2, 3, 4, 5}));
}

TEST(ThreadPool, CarriesItsNameForLabeledStats) {
  ThreadPool unnamed(1);
  EXPECT_EQ(unnamed.name(), "default");
  ThreadPool eval(2, "eval");
  EXPECT_EQ(eval.name(), "eval");
  auto f = eval.submit([] { return 1; });
  EXPECT_EQ(f.get(), 1);
  EXPECT_GT(eval.tasks_executed(), 0u);
}

TEST(ThreadPool, SinglethreadPoolStillWorks) {
  ThreadPool pool(1);
  std::vector<int> out(10, 0);
  parallel_for(pool, 0, 10, [&](std::size_t i) { out[i] = int(i) + 1; });
  EXPECT_EQ(std::accumulate(out.begin(), out.end(), 0), 55);
}

}  // namespace
}  // namespace fedwcm::core
