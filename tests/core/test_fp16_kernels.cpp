// FEDWCM_KERNELS=fp16 compute mode: the fp16-accumulate GEMM family must
// track the blocked reference within a binary16-scale tolerance and be
// bitwise deterministic; the elementwise fused ParamVector ops must land
// exactly on the binary16 lattice; aggregation kernels keep their double
// accumulators (mixed-precision policy in param_vector.hpp).
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "fedwcm/core/gemm_fp16.hpp"
#include "fedwcm/core/param_vector.hpp"
#include "fedwcm/core/quant.hpp"
#include "fedwcm/core/rng.hpp"
#include "fedwcm/core/tensor.hpp"

namespace fedwcm::core {
namespace {

/// Restores the process-wide kernel mode on scope exit.
struct ModeGuard {
  KernelMode saved = kernel_mode();
  ~ModeGuard() { set_kernel_mode(saved); }
};

Matrix random_matrix(std::size_t r, std::size_t c, Rng& rng) {
  Matrix m(r, c);
  for (float& v : m.span()) v = float(rng.normal());
  return m;
}

ParamVector random_pv(std::size_t n, Rng& rng) {
  ParamVector v(n);
  for (float& x : v) x = float(rng.normal());
  return v;
}

void expect_bitwise_equal(const Matrix& a, const Matrix& b, const char* what) {
  ASSERT_TRUE(a.same_shape(b)) << what;
  for (std::size_t i = 0; i < a.size(); ++i) {
    std::uint32_t ba, bb;
    std::memcpy(&ba, a.data() + i, 4);
    std::memcpy(&bb, b.data() + i, 4);
    ASSERT_EQ(ba, bb) << what << " differs at flat index " << i;
  }
}

TEST(Fp16Kernels, ModeRoundTrips) {
  ModeGuard guard;
  set_kernel_mode(KernelMode::kFp16);
  EXPECT_EQ(kernel_mode(), KernelMode::kFp16);
  set_kernel_mode(KernelMode::kBlocked);
  EXPECT_EQ(kernel_mode(), KernelMode::kBlocked);
}

TEST(Fp16Kernels, GemmTracksBlockedWithinHalfPrecisionTolerance) {
  ModeGuard guard;
  Rng rng(31);
  struct Shape {
    std::size_t m, n, k;
  };
  const Shape shapes[] = {{1, 1, 1},  {3, 5, 7},   {4, 16, 8},
                          {13, 19, 7}, {33, 29, 48}, {0, 4, 4}};
  using GemmFn = void (*)(const Matrix&, const Matrix&, Matrix&, bool);
  struct Variant {
    const char* name;
    GemmFn fn;
    bool at, bt;
  };
  const Variant variants[] = {{"matmul", matmul, false, false},
                              {"matmul_tn", matmul_tn, true, false},
                              {"matmul_nt", matmul_nt, false, true}};
  for (const Variant& v : variants) {
    for (const Shape& s : shapes) {
      const Matrix a =
          v.at ? random_matrix(s.k, s.m, rng) : random_matrix(s.m, s.k, rng);
      const Matrix b =
          v.bt ? random_matrix(s.n, s.k, rng) : random_matrix(s.k, s.n, rng);
      Matrix ref, low;
      set_kernel_mode(KernelMode::kBlocked);
      v.fn(a, b, ref, false);
      set_kernel_mode(KernelMode::kFp16);
      v.fn(a, b, low, false);
      ASSERT_TRUE(ref.same_shape(low)) << v.name;
      // Each k-term carries a ~2^-11 relative rounding; a k-long half
      // accumulation of ~N(0,1) products stays well inside this envelope.
      const float tol = 2e-3f * float(s.k ? s.k : 1);
      SCOPED_TRACE(::testing::Message()
                   << v.name << " " << s.m << "x" << s.n << "x" << s.k);
      for (std::size_t i = 0; i < ref.size(); ++i)
        ASSERT_NEAR(ref.data()[i], low.data()[i], tol) << "flat index " << i;
    }
  }
}

TEST(Fp16Kernels, GemmIsBitwiseDeterministic) {
  ModeGuard guard;
  set_kernel_mode(KernelMode::kFp16);
  Rng rng(37);
  const Matrix a = random_matrix(21, 33, rng);
  const Matrix b = random_matrix(33, 17, rng);
  Matrix first, second;
  matmul(a, b, first);
  matmul(a, b, second);
  expect_bitwise_equal(first, second, "repeated fp16 matmul");
}

TEST(Fp16Kernels, GemmExactForSmallIntegerInputs) {
  // Small integers and their short dot products are exactly representable in
  // binary16, so the fp16 path must reproduce them without error regardless
  // of whether the native _Float16 or the emulated fallback is running.
  ModeGuard guard;
  Matrix a(2, 3), b(3, 2);
  const float av[] = {1, 2, 3, 4, 5, 6};
  const float bv[] = {7, 8, 9, 10, 11, 12};
  std::memcpy(a.data(), av, sizeof av);
  std::memcpy(b.data(), bv, sizeof bv);
  Matrix out;
  set_kernel_mode(KernelMode::kFp16);
  matmul(a, b, out);
  EXPECT_EQ(out(0, 0), 58.0f);
  EXPECT_EQ(out(0, 1), 64.0f);
  EXPECT_EQ(out(1, 0), 139.0f);
  EXPECT_EQ(out(1, 1), 154.0f);
}

TEST(Fp16Kernels, FusedOpsLandOnTheHalfLattice) {
  // Every output of the rounded elementwise ops must be a binary16 value
  // (fp16_round is idempotent on its own range).
  ModeGuard guard;
  set_kernel_mode(KernelMode::kFp16);
  Rng rng(41);
  const ParamVector x = random_pv(257, rng);
  const ParamVector b = random_pv(257, rng);

  ParamVector y = b;
  pv::scale_add(0.3f, x, 0.7f, y);
  for (float v : y) EXPECT_EQ(fp16_round(v), v);

  ParamVector out;
  pv::scale_into(1.0f / 3.0f, x, out);
  for (float v : out) EXPECT_EQ(fp16_round(v), v);

  pv::blend_into(0.9f, x, 0.1f, b, out);
  for (float v : out) EXPECT_EQ(fp16_round(v), v);
}

TEST(Fp16Kernels, FusedOpsExactForHalfRepresentableInputs) {
  // With inputs, scalars, products, and sums all exactly representable in
  // binary16, fp16 mode must agree bitwise with the blocked-mode result.
  ModeGuard guard;
  const ParamVector x = {1.0f, -2.0f, 0.5f, 4.0f};
  const ParamVector b = {8.0f, 0.25f, -1.0f, 2.0f};

  ParamVector y_ref = b, y_low = b;
  set_kernel_mode(KernelMode::kBlocked);
  pv::scale_add(2.0f, x, 0.5f, y_ref);
  set_kernel_mode(KernelMode::kFp16);
  pv::scale_add(2.0f, x, 0.5f, y_low);
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_EQ(y_ref[i], y_low[i]) << i;

  ParamVector o_ref, o_low;
  set_kernel_mode(KernelMode::kBlocked);
  pv::blend_into(0.5f, x, 2.0f, b, o_ref);
  set_kernel_mode(KernelMode::kFp16);
  pv::blend_into(0.5f, x, 2.0f, b, o_low);
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_EQ(o_ref[i], o_low[i]) << i;
}

TEST(Fp16Kernels, FusedOpsTrackReferenceWithinHalfPrecision) {
  ModeGuard guard;
  Rng rng(43);
  const ParamVector x = random_pv(1024, rng);
  const ParamVector b = random_pv(1024, rng);
  ParamVector y_ref = b, y_low = b;
  set_kernel_mode(KernelMode::kBlocked);
  pv::scale_add(0.8f, x, 0.2f, y_ref);
  set_kernel_mode(KernelMode::kFp16);
  pv::scale_add(0.8f, x, 0.2f, y_low);
  for (std::size_t i = 0; i < x.size(); ++i)
    EXPECT_NEAR(y_ref[i], y_low[i], 4e-3f * (1.0f + std::fabs(y_ref[i]))) << i;
}

TEST(Fp16Kernels, AggregationKeepsDoubleAccumulators) {
  // weighted_sum is the fp32-master side of mixed precision: its result in
  // fp16 mode must be bitwise identical to blocked mode (no half rounding).
  ModeGuard guard;
  Rng rng(47);
  const ParamVector a = random_pv(512, rng);
  const ParamVector b = random_pv(512, rng);
  const ParamVector c = random_pv(512, rng);
  const float w[] = {0.2f, 0.3f, 0.5f};
  const ParamVector* xs[] = {&a, &b, &c};
  ParamVector ref, low;
  set_kernel_mode(KernelMode::kBlocked);
  pv::weighted_sum(w, xs, ref);
  set_kernel_mode(KernelMode::kFp16);
  pv::weighted_sum(w, xs, low);
  ASSERT_EQ(ref.size(), low.size());
  for (std::size_t i = 0; i < ref.size(); ++i) {
    std::uint32_t br, bl;
    std::memcpy(&br, &ref[i], 4);
    std::memcpy(&bl, &low[i], 4);
    ASSERT_EQ(br, bl) << "weighted_sum index " << i;
  }
  set_kernel_mode(KernelMode::kBlocked);
  const pv::DotNorms dn_ref = pv::dot_norms(a, b);
  set_kernel_mode(KernelMode::kFp16);
  const pv::DotNorms dn_low = pv::dot_norms(a, b);
  EXPECT_EQ(dn_ref.dot, dn_low.dot);
  EXPECT_EQ(dn_ref.a_norm_sq, dn_low.a_norm_sq);
  EXPECT_EQ(dn_ref.b_norm_sq, dn_low.b_norm_sq);
}

TEST(Fp16Kernels, DirectGemmCoreMatchesWideReference) {
  // Drive detail::gemm_fp16 through its raw strided interface and compare to
  // a double-precision reference of the same half-rounded products.
  Rng rng(53);
  const std::size_t m = 5, n = 7, k = 11;
  std::vector<float> a(m * k), b(k * n), c(m * n, 0.0f);
  for (float& v : a) v = float(rng.normal());
  for (float& v : b) v = float(rng.normal());
  detail::gemm_fp16(m, n, k, a.data(), k, 1, b.data(), n, 1, c.data(), n);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double ref = 0.0;
      for (std::size_t p = 0; p < k; ++p)
        ref += double(fp16_round(a[i * k + p])) * double(fp16_round(b[p * n + j]));
      EXPECT_NEAR(c[i * n + j], float(ref), 2e-2f) << i << "," << j;
    }
  }
}

}  // namespace
}  // namespace fedwcm::core
