// Property tests for the cache-blocked GEMM against the naive reference:
// across odd and edge shapes, both kernel modes must produce bitwise-equal
// results when the output starts from zeros (for K <= detail::kKC they then
// execute the identical per-element FP chain), accumulation onto nonzero
// contents must agree within tight tolerance, two blocked runs must be
// bitwise deterministic, and the aliasing guard must reject GEMMs into their
// own operands.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "fedwcm/core/gemm_blocked.hpp"
#include "fedwcm/core/rng.hpp"
#include "fedwcm/core/tensor.hpp"

namespace fedwcm::core {
namespace {

/// Restores the process-wide kernel mode on scope exit (tests share one
/// process, so leaking kNaive would silently change later tests).
struct ModeGuard {
  KernelMode saved = kernel_mode();
  ~ModeGuard() { set_kernel_mode(saved); }
};

Matrix random_matrix(std::size_t r, std::size_t c, Rng& rng) {
  Matrix m(r, c);
  for (float& v : m.span()) v = float(rng.normal());
  return m;
}

void expect_bitwise_equal(const Matrix& a, const Matrix& b, const char* what) {
  ASSERT_TRUE(a.same_shape(b)) << what;
  for (std::size_t i = 0; i < a.size(); ++i) {
    // Compare representations: bitwise equality is the contract, not just
    // value equality (0.0f == -0.0f would pass a float compare).
    std::uint32_t ba, bb;
    std::memcpy(&ba, a.data() + i, 4);
    std::memcpy(&bb, b.data() + i, 4);
    ASSERT_EQ(ba, bb) << what << " differs at flat index " << i << ": "
                      << a.data()[i] << " vs " << b.data()[i];
  }
}

struct Shape {
  std::size_t m, n, k;
};

// 1xN / Nx1 degenerate shapes, sizes around the MR=4 / NR=16 tile edges,
// sizes crossing the MC=64 row-block boundary, and empty extents.
const Shape kShapes[] = {
    {1, 1, 1},  {1, 17, 4},  {5, 1, 9},   {1, 1, 33},  {5, 17, 33},
    {4, 16, 8}, {8, 32, 16}, {3, 15, 2},  {13, 19, 7}, {70, 40, 20},
    {65, 33, 5}, {2, 130, 3}, {0, 4, 4},  {4, 0, 4},   {4, 4, 0},
};

using GemmFn = void (*)(const Matrix&, const Matrix&, Matrix&, bool);

struct Variant {
  const char* name;
  GemmFn fn;
  GemmFn naive;
  bool a_transposed;  // operand A passed as (k x m)
  bool b_transposed;  // operand B passed as (n x k)
};

const Variant kVariants[] = {
    {"matmul", matmul, naive_matmul, false, false},
    {"matmul_tn", matmul_tn, naive_matmul_tn, true, false},
    {"matmul_nt", matmul_nt, naive_matmul_nt, false, true},
};

TEST(GemmBlocked, BitwiseMatchesNaiveAcrossEdgeShapes) {
  ModeGuard guard;
  Rng rng(7);
  for (const Variant& v : kVariants) {
    for (const Shape& s : kShapes) {
      const Matrix a = v.a_transposed ? random_matrix(s.k, s.m, rng)
                                      : random_matrix(s.m, s.k, rng);
      const Matrix b = v.b_transposed ? random_matrix(s.n, s.k, rng)
                                      : random_matrix(s.k, s.n, rng);
      for (const bool accumulate : {false, true}) {
        // Bitwise parity holds when the output starts from zeros — the case
        // the training path actually exercises (gradients accumulate onto
        // zero_grads-zeroed buffers). Accumulating onto *nonzero* contents
        // associates differently: naive matmul/matmul_tn chain each k-term
        // through memory (((c+t1)+t2)+...) while blocked adds one register
        // total (c+(t1+...+tk)), so that case is covered by the tolerance
        // check below, not by bit equality.
        Matrix seed(s.m, s.n);
        Matrix blocked = seed, naive = seed;
        set_kernel_mode(KernelMode::kBlocked);
        v.fn(a, b, blocked, accumulate);
        set_kernel_mode(KernelMode::kNaive);
        v.fn(a, b, naive, accumulate);
        SCOPED_TRACE(::testing::Message()
                     << v.name << " " << s.m << "x" << s.n << "x" << s.k
                     << (accumulate ? " accumulate" : ""));
        expect_bitwise_equal(blocked, naive, v.name);
        // The explicit naive_* entry points must agree with kNaive dispatch.
        Matrix direct = seed;
        v.naive(a, b, direct, accumulate);
        expect_bitwise_equal(naive, direct, "naive dispatch");
      }
      {
        // Accumulating onto nonzero contents: tight tolerance (see above).
        Matrix seed = random_matrix(s.m, s.n, rng);
        Matrix blocked = seed, naive = seed;
        set_kernel_mode(KernelMode::kBlocked);
        v.fn(a, b, blocked, /*accumulate=*/true);
        set_kernel_mode(KernelMode::kNaive);
        v.fn(a, b, naive, /*accumulate=*/true);
        SCOPED_TRACE(::testing::Message()
                     << v.name << " " << s.m << "x" << s.n << "x" << s.k
                     << " accumulate onto nonzero");
        for (std::size_t i = 0; i < blocked.size(); ++i)
          ASSERT_NEAR(blocked.data()[i], naive.data()[i], 1e-4f)
              << "flat index " << i;
      }
    }
  }
}

TEST(GemmBlocked, LargeKSplitsStayWithinTolerance) {
  // K > detail::kKC runs as multiple k-blocks: a differently associated (but
  // still deterministic) sum, so compare with a tolerance instead of bits.
  ModeGuard guard;
  Rng rng(11);
  const std::size_t k = detail::kKC + 37;
  const Matrix a = random_matrix(3, k, rng);
  const Matrix b = random_matrix(k, 5, rng);
  Matrix blocked, naive;
  set_kernel_mode(KernelMode::kBlocked);
  matmul(a, b, blocked);
  set_kernel_mode(KernelMode::kNaive);
  matmul(a, b, naive);
  for (std::size_t i = 0; i < blocked.size(); ++i)
    ASSERT_NEAR(blocked.data()[i], naive.data()[i], 2e-2f) << "index " << i;
}

TEST(GemmBlocked, RepeatedRunsAreBitwiseDeterministic) {
  ModeGuard guard;
  set_kernel_mode(KernelMode::kBlocked);
  Rng rng(13);
  const Matrix a = random_matrix(37, 29, rng);
  const Matrix b = random_matrix(29, 41, rng);
  Matrix first, second;
  matmul(a, b, first);
  matmul(a, b, second);
  expect_bitwise_equal(first, second, "repeated blocked matmul");
}

TEST(GemmBlocked, AliasedOutputThrows) {
  ModeGuard guard;
  Rng rng(17);
  Matrix a = random_matrix(4, 4, rng);
  Matrix b = random_matrix(4, 4, rng);
  for (const KernelMode mode : {KernelMode::kBlocked, KernelMode::kNaive}) {
    set_kernel_mode(mode);
    EXPECT_THROW(matmul(a, b, a), std::invalid_argument);
    EXPECT_THROW(matmul(a, b, b), std::invalid_argument);
    EXPECT_THROW(matmul_tn(a, b, a), std::invalid_argument);
    EXPECT_THROW(matmul_nt(a, b, b), std::invalid_argument);
  }
}

TEST(GemmBlocked, KernelModeRoundTrips) {
  ModeGuard guard;
  set_kernel_mode(KernelMode::kNaive);
  EXPECT_EQ(kernel_mode(), KernelMode::kNaive);
  set_kernel_mode(KernelMode::kBlocked);
  EXPECT_EQ(kernel_mode(), KernelMode::kBlocked);
}

}  // namespace
}  // namespace fedwcm::core
