// RNG tests: determinism, distribution sanity (moment checks), Dirichlet
// simplex properties across a parameter grid, and unbiased index sampling.
#include "fedwcm/core/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>

namespace fedwcm::core {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 2);
}

TEST(DeriveSeed, DistinctStreams) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t a = 0; a < 10; ++a)
    for (std::uint64_t b = 0; b < 10; ++b) seen.insert(derive_seed(42, a, b));
  EXPECT_EQ(seen.size(), 100u);
  EXPECT_NE(derive_seed(1, 2, 3), derive_seed(1, 3, 2));
}

TEST(Rng, UniformInRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-2.0, 3.0);
    EXPECT_GE(u, -2.0);
    EXPECT_LT(u, 3.0);
  }
}

TEST(Rng, UniformIndexBoundsAndCoverage) {
  Rng rng(6);
  std::vector<int> hits(7, 0);
  for (int i = 0; i < 7000; ++i) ++hits[rng.uniform_index(7)];
  for (int h : hits) EXPECT_GT(h, 700);  // each bucket ~1000, allow slack
  EXPECT_THROW(rng.uniform_index(0), std::invalid_argument);
}

TEST(Rng, NormalMoments) {
  Rng rng(7);
  const int n = 20000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(Rng, NormalWithParams) {
  Rng rng(8);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.normal(5.0, 2.0);
  EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(Rng, GammaMeanMatchesShape) {
  Rng rng(9);
  for (double shape : {0.3, 1.0, 2.5, 10.0}) {
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) sum += rng.gamma(shape);
    // Gamma(shape, 1) has mean = shape.
    EXPECT_NEAR(sum / n, shape, shape * 0.1 + 0.02) << "shape " << shape;
  }
  EXPECT_THROW(rng.gamma(0.0), std::invalid_argument);
}

class DirichletTest : public ::testing::TestWithParam<std::tuple<double, std::size_t>> {};

TEST_P(DirichletTest, SimplexProperty) {
  const auto [alpha, dim] = GetParam();
  Rng rng(11);
  for (int trial = 0; trial < 50; ++trial) {
    const auto p = rng.dirichlet(alpha, dim);
    ASSERT_EQ(p.size(), dim);
    double sum = 0.0;
    for (double v : p) {
      EXPECT_GE(v, 0.0);
      sum += v;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST_P(DirichletTest, MeanIsUniform) {
  const auto [alpha, dim] = GetParam();
  Rng rng(12);
  std::vector<double> mean(dim, 0.0);
  const int n = 3000;
  for (int i = 0; i < n; ++i) {
    const auto p = rng.dirichlet(alpha, dim);
    for (std::size_t j = 0; j < dim; ++j) mean[j] += p[j];
  }
  for (double& m : mean) m /= n;
  for (double m : mean) EXPECT_NEAR(m, 1.0 / double(dim), 0.05);
}

INSTANTIATE_TEST_SUITE_P(BetaGrid, DirichletTest,
                         ::testing::Combine(::testing::Values(0.05, 0.1, 0.6, 1.0,
                                                              10.0),
                                            ::testing::Values(std::size_t(2),
                                                              std::size_t(10),
                                                              std::size_t(50))));

TEST(Rng, DirichletLowBetaIsSkewed) {
  Rng rng(13);
  // With beta = 0.05 the max component should usually dominate.
  int dominated = 0;
  for (int i = 0; i < 200; ++i) {
    const auto p = rng.dirichlet(0.05, 10);
    if (*std::max_element(p.begin(), p.end()) > 0.5) ++dominated;
  }
  EXPECT_GT(dominated, 150);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(14);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  rng.shuffle(v);
  auto sorted = v;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sorted[i], i);
  EXPECT_FALSE(std::is_sorted(v.begin(), v.end()));  // astronomically unlikely
}

TEST(Rng, SampleWithoutReplacement) {
  Rng rng(15);
  const auto s = rng.sample_without_replacement(20, 8);
  EXPECT_EQ(s.size(), 8u);
  std::set<std::size_t> unique(s.begin(), s.end());
  EXPECT_EQ(unique.size(), 8u);
  for (std::size_t i : s) EXPECT_LT(i, 20u);
  EXPECT_THROW(rng.sample_without_replacement(3, 4), std::invalid_argument);
  EXPECT_EQ(rng.sample_without_replacement(5, 5).size(), 5u);
}

}  // namespace
}  // namespace fedwcm::core
