// scaled_count: exact round(n * p) where the old double formula
// `size_t(double(n) * p + 0.5)` drifts past 2^53 or collapses tiny products.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>

#include "fedwcm/core/fraction.hpp"

namespace fedwcm::core {
namespace {

TEST(ScaledCount, SmallExactCases) {
  EXPECT_EQ(scaled_count(30, 0.1), 3u);
  EXPECT_EQ(scaled_count(20, 0.5), 10u);
  EXPECT_EQ(scaled_count(100, 0.25), 25u);
  EXPECT_EQ(scaled_count(7, 1.0 / 7.0), 1u);
  EXPECT_EQ(scaled_count(3, 1.0 / 3.0), 1u);
}

TEST(ScaledCount, HalfRoundsUp) {
  EXPECT_EQ(scaled_count(10, 0.25), 3u);  // 2.5 -> 3 (matches old +0.5 intent)
  EXPECT_EQ(scaled_count(2, 0.25), 1u);   // 0.5 -> 1
  EXPECT_EQ(scaled_count(6, 0.25), 2u);   // 1.5 -> 2 (half-up, not banker's)
}

TEST(ScaledCount, DegenerateInputs) {
  EXPECT_EQ(scaled_count(0, 0.5), 0u);
  EXPECT_EQ(scaled_count(100, 0.0), 0u);
  EXPECT_EQ(scaled_count(100, -0.5), 0u);
  EXPECT_EQ(scaled_count(100, 1.0), 100u);
  EXPECT_EQ(scaled_count(100, 1.5), 100u);  // clamped, not scaled past n
  // Non-finite p is a config bug, not a fraction: documented as 0.
  EXPECT_EQ(scaled_count(100, std::numeric_limits<double>::quiet_NaN()), 0u);
  EXPECT_EQ(scaled_count(100, std::numeric_limits<double>::infinity()), 0u);
}

TEST(ScaledCount, ExactPastDoubleMantissa) {
  // n * p crosses 2^53: double arithmetic rounds the product before the
  // +0.5 and lands on an even neighbor; exact arithmetic does not.
  const std::size_t n = (std::size_t(1) << 53) + 1;  // odd, not a double
  EXPECT_EQ(scaled_count(n, 0.5), (std::size_t(1) << 52) + 1);
  const std::size_t big = std::numeric_limits<std::size_t>::max();
  // max * 0.5 = (2^64 - 1) / 2 = 2^63 - 0.5 -> 2^63 (half-up).
  EXPECT_EQ(scaled_count(big, 0.5), std::size_t(1) << 63);
}

TEST(ScaledCount, LargePopulationBoundaries) {
  const std::size_t n = std::size_t(1) << 32;  // 4.29e9 clients
  EXPECT_EQ(scaled_count(n, 1.0), n);
  EXPECT_EQ(scaled_count(n, 0.5), n / 2);
  // participation = 1/n: exactly one client.
  EXPECT_EQ(scaled_count(n, 1.0 / double(n)), 1u);
  // p = 2^-70 * n = 2^-38 of a client: rounds to zero, no wrap-around.
  EXPECT_EQ(scaled_count(n, std::ldexp(1.0, -70)), 0u);
}

TEST(ScaledCount, MatchesOldFormulaInSafeRange) {
  // Below 2^53 the old formula was correct; the rewrite must agree there so
  // historical trajectories (cohort sizes) are preserved bit for bit.
  const double parts[] = {0.1, 0.25, 1.0 / 3.0, 0.5, 0.9, 1.0 / 7.0};
  for (std::size_t n : {1u, 8u, 20u, 30u, 100u, 1000u, 99999u}) {
    for (double p : parts) {
      const auto old_formula = std::size_t(double(n) * p + 0.5);
      EXPECT_EQ(scaled_count(n, p), old_formula) << "n=" << n << " p=" << p;
    }
  }
}

}  // namespace
}  // namespace fedwcm::core
