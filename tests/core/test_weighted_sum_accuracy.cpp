// weighted_sum accumulation accuracy at large cohort counts: a float running
// sum drifts by hundreds of ulps over 10^5 inputs; the double accumulator
// must land within 1 ulp of the exact mean, in both kernel modes.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "fedwcm/core/param_vector.hpp"
#include "fedwcm/core/tensor.hpp"

namespace fedwcm::core {
namespace {

float ulp_distance(float a, float b) {
  if (a == b) return 0.0f;
  const float scale = std::max(std::abs(a), std::abs(b));
  return std::abs(a - b) / (scale * std::numeric_limits<float>::epsilon());
}

// 10^5-client uniform cohort, every delta identical: the survivor-weighted
// mean must be exactly that delta (within 1 ulp), not drift with N.
void check_uniform_cohort(KernelMode mode) {
  const KernelMode prev = kernel_mode();
  set_kernel_mode(mode);
  const std::size_t clients = 100000;
  const std::size_t dim = 64;
  ParamVector delta(dim);
  for (std::size_t j = 0; j < dim; ++j)
    delta[j] = 0.1f + 0.01f * float(j % 7);  // inexact in binary on purpose

  std::vector<float> w(clients, 1.0f / float(clients));
  std::vector<const ParamVector*> xs(clients, &delta);
  ParamVector out;
  pv::weighted_sum(w, xs, out);
  set_kernel_mode(prev);

  ASSERT_EQ(out.size(), dim);
  // Total weight is N float-rounded copies of 1/N, so the exact result is
  // delta * (N * float(1/N)); with double accumulation that product is
  // computed exactly and the only rounding is the final float cast.
  const double wsum = double(clients) * double(1.0f / float(clients));
  for (std::size_t j = 0; j < dim; ++j) {
    const float exact = float(double(delta[j]) * wsum);
    EXPECT_LE(ulp_distance(out[j], exact), 1.0f) << "dim " << j;
  }
}

TEST(WeightedSumAccuracy, UniformCohortExactMeanBlocked) {
  check_uniform_cohort(KernelMode::kBlocked);
}

TEST(WeightedSumAccuracy, UniformCohortExactMeanNaive) {
  check_uniform_cohort(KernelMode::kNaive);
}

TEST(WeightedSumAccuracy, ModesBitwiseEqualOnMixedInputs) {
  // The A/B contract: blocked and naive must agree bit for bit, including
  // on a large ragged-weight cohort exercising the chunked path.
  const std::size_t clients = 1000;
  const std::size_t dim = 5000;  // > one 4096-wide chunk
  std::vector<ParamVector> deltas(clients, ParamVector(dim));
  std::vector<float> w(clients);
  std::vector<const ParamVector*> xs(clients);
  std::uint64_t state = 0x9e3779b97f4a7c15ull;
  auto next = [&state]() {
    state ^= state >> 12; state ^= state << 25; state ^= state >> 27;
    return float(double(state * 0x2545f4914f6cdd1dull >> 11) /
                 double(1ull << 53)) - 0.5f;
  };
  for (std::size_t i = 0; i < clients; ++i) {
    for (auto& v : deltas[i]) v = next();
    w[i] = 0.5f + 0.5f * std::abs(next());
    xs[i] = &deltas[i];
  }

  const KernelMode prev = kernel_mode();
  ParamVector blocked, naive;
  set_kernel_mode(KernelMode::kBlocked);
  pv::weighted_sum(w, xs, blocked);
  set_kernel_mode(KernelMode::kNaive);
  pv::weighted_sum(w, xs, naive);
  set_kernel_mode(prev);
  EXPECT_EQ(blocked, naive);
}

}  // namespace
}  // namespace fedwcm::core
