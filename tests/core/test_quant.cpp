// Low-precision codec (core/quant.hpp): binary16 conversion correctness,
// per-tensor int8 error bounds, round-trip bitwise stability, and hostile
// wire-format rejection mirroring the core serialize tests.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <sstream>

#include "fedwcm/core/quant.hpp"
#include "fedwcm/core/rng.hpp"

namespace fedwcm::core {
namespace {

ParamVector random_vector(std::size_t n, std::uint64_t seed, float span = 1.0f) {
  Rng rng(seed);
  ParamVector v(n);
  for (float& x : v) x = (float(rng.uniform()) * 2.0f - 1.0f) * span;
  return v;
}

// ---------------------------------------------------------------------------
// binary16 conversion.
// ---------------------------------------------------------------------------

TEST(Fp16Bits, ExactValuesRoundTrip) {
  // Every binary16-representable value must survive the float round trip
  // bit-for-bit (halves embed exactly into fp32).
  for (std::uint32_t bits = 0; bits <= 0xFFFF; ++bits) {
    const std::uint16_t h = std::uint16_t(bits);
    const std::uint16_t exp = (h >> 10) & 0x1F;
    const std::uint16_t mant = h & 0x3FF;
    if (exp == 0x1F && mant != 0) continue;  // NaN payloads need not survive.
    const float f = float_from_fp16_bits(h);
    EXPECT_EQ(fp16_bits_from_float(f), h) << "half bits 0x" << std::hex << bits;
  }
}

#if defined(__FLT16_MANT_DIG__)
TEST(Fp16Bits, MatchesHardwareConversionForFiniteValues) {
  // The bit-twiddled conversion must agree with the compiler's _Float16 cast
  // (RNE) wherever the cast produces a finite half.
  Rng rng(7);
  for (int i = 0; i < 200000; ++i) {
    const float f = (float(rng.uniform()) * 2.0f - 1.0f) * 70000.0f;
    const _Float16 h = (_Float16)f;
    const float via_cast = (float)h;
    if (!std::isfinite(via_cast)) continue;  // Cast overflowed; we saturate.
    EXPECT_EQ(std::bit_cast<std::uint32_t>(float_from_fp16_bits(
                  fp16_bits_from_float(f))),
              std::bit_cast<std::uint32_t>(via_cast))
        << "f = " << f;
  }
  // Subnormal-half territory, where the rounding logic is trickiest.
  for (int i = 0; i < 200000; ++i) {
    const float f = (float(rng.uniform()) * 2.0f - 1.0f) * 7e-5f;
    EXPECT_EQ(std::bit_cast<std::uint32_t>(
                  float_from_fp16_bits(fp16_bits_from_float(f))),
              std::bit_cast<std::uint32_t>((float)(_Float16)f))
        << "f = " << f;
  }
}
#endif

TEST(Fp16Bits, SaturatesInsteadOfOverflowing) {
  EXPECT_EQ(float_from_fp16_bits(fp16_bits_from_float(1e6f)), 65504.0f);
  EXPECT_EQ(float_from_fp16_bits(fp16_bits_from_float(-1e6f)), -65504.0f);
  EXPECT_EQ(float_from_fp16_bits(fp16_bits_from_float(65504.0f)), 65504.0f);
  // A true float infinity is preserved as a half infinity (it is not a
  // finite value that overflowed — poisoned uploads must stay non-finite).
  const float inf = std::numeric_limits<float>::infinity();
  EXPECT_TRUE(std::isinf(float_from_fp16_bits(fp16_bits_from_float(inf))));
  EXPECT_TRUE(std::isnan(float_from_fp16_bits(
      fp16_bits_from_float(std::numeric_limits<float>::quiet_NaN()))));
}

TEST(Fp16Bits, RoundsToNearestEven) {
  // 1 + 2^-11 is exactly halfway between 1 and the next half (1 + 2^-10):
  // RNE picks the even mantissa, i.e. 1.0.
  EXPECT_EQ(fp16_round(1.0f + 0x1p-11f), 1.0f);
  // 1 + 3*2^-11 is halfway between 1 + 2^-10 and 1 + 2^-9: even is 1 + 2^-9.
  EXPECT_EQ(fp16_round(1.0f + 3 * 0x1p-11f), 1.0f + 0x1p-9f);
  // Signed zero survives.
  EXPECT_EQ(fp16_bits_from_float(-0.0f), 0x8000u);
  EXPECT_EQ(fp16_bits_from_float(0.0f), 0x0000u);
}

TEST(Fp16Bits, Fp16RoundErrorBound) {
  // Relative error of one rounding is at most 2^-11 for normal halves.
  Rng rng(11);
  for (int i = 0; i < 100000; ++i) {
    const float f = (float(rng.uniform()) * 2.0f - 1.0f) * 100.0f;
    if (std::fabs(f) < 6.2e-5f) continue;  // Subnormal: absolute bound only.
    EXPECT_LE(std::fabs(fp16_round(f) - f), std::fabs(f) * 0x1p-11f + 1e-12f)
        << "f = " << f;
  }
}

// ---------------------------------------------------------------------------
// Codec encode/decode.
// ---------------------------------------------------------------------------

TEST(Quant, WireBytesFormula) {
  // 28-byte frame (magic + codec + count + scale + payload length) + payload.
  EXPECT_EQ(wire_bytes(Codec::kFp32, 0), 28u);
  EXPECT_EQ(wire_bytes(Codec::kFp32, 100), 28u + 400u);
  EXPECT_EQ(wire_bytes(Codec::kFp16, 100), 28u + 200u);
  EXPECT_EQ(wire_bytes(Codec::kInt8, 100), 28u + 100u);
}

TEST(Quant, Int8ShrinksAtLeast3point5x) {
  // The acceptance headline: at realistic delta sizes the framed int8
  // message is >= 3.5x smaller than the framed fp32 one.
  for (const std::uint64_t n : {1000u, 10000u, 100000u, 1000000u}) {
    const double ratio = double(wire_bytes(Codec::kFp32, n)) /
                         double(wire_bytes(Codec::kInt8, n));
    EXPECT_GE(ratio, 3.5) << "n = " << n;
  }
}

TEST(Quant, Fp32IsBitwiseExact) {
  const ParamVector x = random_vector(1000, 3, 10.0f);
  QuantizedVector q;
  quantize(Codec::kFp32, x, q);
  ParamVector back;
  dequantize(q, back);
  ASSERT_EQ(back.size(), x.size());
  for (std::size_t i = 0; i < x.size(); ++i)
    EXPECT_EQ(std::bit_cast<std::uint32_t>(back[i]),
              std::bit_cast<std::uint32_t>(x[i]));
}

TEST(Quant, Int8ErrorBoundedByHalfScale) {
  // Per-tensor symmetric RNE: |x - dehat| <= scale/2 = max|x| / 254 per
  // element (the fundamental quantize->dequantize error bound).
  const ParamVector x = random_vector(4096, 5, 0.37f);
  QuantizedVector q;
  quantize(Codec::kInt8, x, q);
  ASSERT_EQ(q.codec, Codec::kInt8);
  float max_abs = 0.0f;
  for (float v : x) max_abs = std::max(max_abs, std::fabs(v));
  EXPECT_FLOAT_EQ(q.scale, max_abs / 127.0f);
  ParamVector back;
  dequantize(q, back);
  for (std::size_t i = 0; i < x.size(); ++i)
    EXPECT_LE(std::fabs(back[i] - x[i]), q.scale * 0.5f + 1e-9f) << i;
}

TEST(Quant, Fp16ErrorBounded) {
  const ParamVector x = random_vector(4096, 6, 2.0f);
  QuantizedVector q;
  quantize(Codec::kFp16, x, q);
  ParamVector back;
  dequantize(q, back);
  for (std::size_t i = 0; i < x.size(); ++i)
    EXPECT_LE(std::fabs(back[i] - x[i]), std::fabs(x[i]) * 0x1p-11f + 6.0e-8f)
        << i;
}

TEST(Quant, RoundTripIsBitwiseStable) {
  // Quantizing an already-dequantized vector must reproduce the identical
  // payload and scale: the codec is idempotent on its own lattice.
  for (const Codec codec : {Codec::kFp16, Codec::kInt8}) {
    const ParamVector x = random_vector(2048, 9, 1.3f);
    QuantizedVector q1;
    quantize(codec, x, q1);
    ParamVector d1;
    dequantize(q1, d1);
    QuantizedVector q2;
    quantize(codec, d1, q2);
    ParamVector d2;
    dequantize(q2, d2);
    ASSERT_EQ(d1.size(), d2.size());
    for (std::size_t i = 0; i < d1.size(); ++i)
      EXPECT_EQ(std::bit_cast<std::uint32_t>(d1[i]),
                std::bit_cast<std::uint32_t>(d2[i]))
          << to_string(codec) << " element " << i;
  }
}

TEST(Quant, ZeroVectorEncodesToZeros) {
  const ParamVector x(128, 0.0f);
  QuantizedVector q;
  quantize(Codec::kInt8, x, q);
  EXPECT_EQ(q.scale, 0.0f);
  ParamVector back;
  dequantize(q, back);
  for (float v : back) EXPECT_EQ(v, 0.0f);
}

TEST(Quant, NonFiniteInputPoisonsInt8Message) {
  // A NaN element (corrupt upload) must not vanish inside the int8 payload:
  // the whole message decodes non-finite so the server-side guard fires.
  ParamVector x = random_vector(64, 12);
  x[17] = std::numeric_limits<float>::quiet_NaN();
  QuantizedVector q;
  quantize(Codec::kInt8, x, q);
  EXPECT_TRUE(std::isnan(q.scale));
  ParamVector back;
  dequantize(q, back);
  bool any_finite = false;
  for (float v : back) any_finite |= std::isfinite(v);
  EXPECT_FALSE(any_finite);
}

TEST(Quant, NonFiniteInputSurvivesFp16) {
  ParamVector x = random_vector(64, 13);
  x[5] = std::numeric_limits<float>::infinity();
  x[6] = std::numeric_limits<float>::quiet_NaN();
  QuantizedVector q;
  quantize(Codec::kFp16, x, q);
  ParamVector back;
  dequantize(q, back);
  EXPECT_TRUE(std::isinf(back[5]));
  EXPECT_TRUE(std::isnan(back[6]));
}

// ---------------------------------------------------------------------------
// Wire format: round trip + hostile-stream rejection.
// ---------------------------------------------------------------------------

std::string encode_to_string(const QuantizedVector& q) {
  std::ostringstream os(std::ios::binary);
  BinaryWriter w(os);
  write_quantized(w, q);
  return os.str();
}

QuantizedVector decode_from_string(const std::string& bytes) {
  std::istringstream is(bytes, std::ios::binary);
  BinaryReader r(is);
  return read_quantized(r);
}

TEST(QuantWire, RoundTripsEveryCodec) {
  for (const Codec codec : {Codec::kFp32, Codec::kFp16, Codec::kInt8}) {
    const ParamVector x = random_vector(333, 21, 0.5f);
    QuantizedVector q;
    quantize(codec, x, q);
    const std::string bytes = encode_to_string(q);
    EXPECT_EQ(bytes.size(), q.wire_bytes()) << to_string(codec);
    const QuantizedVector out = decode_from_string(bytes);
    EXPECT_EQ(out.codec, q.codec);
    EXPECT_EQ(out.count, q.count);
    EXPECT_EQ(std::bit_cast<std::uint32_t>(out.scale),
              std::bit_cast<std::uint32_t>(q.scale));
    EXPECT_EQ(out.payload, q.payload);
  }
}

TEST(QuantWire, RejectsBadMagic) {
  QuantizedVector q;
  quantize(Codec::kInt8, random_vector(16, 2), q);
  std::string bytes = encode_to_string(q);
  bytes[0] ^= 0x5A;
  EXPECT_THROW(decode_from_string(bytes), std::runtime_error);
}

TEST(QuantWire, RejectsUnknownCodec) {
  QuantizedVector q;
  quantize(Codec::kInt8, random_vector(16, 2), q);
  std::string bytes = encode_to_string(q);
  bytes[4] = 0x7F;  // codec field
  EXPECT_THROW(decode_from_string(bytes), std::runtime_error);
}

TEST(QuantWire, RejectsTruncatedPayload) {
  QuantizedVector q;
  quantize(Codec::kFp16, random_vector(100, 2), q);
  const std::string bytes = encode_to_string(q);
  for (const std::size_t keep : {bytes.size() - 1, bytes.size() / 2,
                                 std::size_t(27), std::size_t(3)}) {
    EXPECT_THROW(decode_from_string(bytes.substr(0, keep)), std::runtime_error)
        << "kept " << keep << " bytes";
  }
}

TEST(QuantWire, RejectsCountPayloadDisagreement) {
  QuantizedVector q;
  quantize(Codec::kInt8, random_vector(32, 2), q);
  std::string bytes = encode_to_string(q);
  // Inflate the count field (offset 8, u64) without growing the payload.
  bytes[8] = char(0xFF);
  EXPECT_THROW(decode_from_string(bytes), std::runtime_error);
}

TEST(QuantWire, RejectsHugeLengthPrefixWithoutAllocating) {
  // A hostile length prefix far beyond the stream must throw before any
  // attempt to allocate it.
  std::ostringstream os(std::ios::binary);
  BinaryWriter w(os);
  w.write_u32(0x30515746);                // magic
  w.write_u32(2);                         // int8
  w.write_u64(std::uint64_t(1) << 60);    // absurd count
  w.write_f32(1.0f);
  w.write_u64(std::uint64_t(1) << 60);    // matching absurd payload length
  EXPECT_THROW(decode_from_string(os.str()), std::runtime_error);
}

TEST(Quant, CodecNamesRoundTrip) {
  for (const Codec codec : {Codec::kFp32, Codec::kFp16, Codec::kInt8}) {
    Codec out;
    ASSERT_TRUE(codec_from_string(to_string(codec), out));
    EXPECT_EQ(out, codec);
  }
  Codec out;
  EXPECT_FALSE(codec_from_string("int4", out));
  EXPECT_FALSE(codec_from_string("", out));
}

}  // namespace
}  // namespace fedwcm::core
