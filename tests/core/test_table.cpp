// Table / series emitter tests — the experiment harness's output layer.
#include "fedwcm/core/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace fedwcm::core {
namespace {

TEST(TablePrinter, AlignedOutputContainsAllCells) {
  TablePrinter t({"method", "acc"});
  t.add_row({"fedwcm", "0.7207"});
  t.add_row({"fedavg", "0.6775"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("method"), std::string::npos);
  EXPECT_NE(s.find("fedwcm"), std::string::npos);
  EXPECT_NE(s.find("0.6775"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(TablePrinter, ColumnCountMismatchThrows) {
  TablePrinter t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(TablePrinter, FmtPrecision) {
  EXPECT_EQ(TablePrinter::fmt(0.123456, 4), "0.1235");
  EXPECT_EQ(TablePrinter::fmt(2.0, 1), "2.0");
}

TEST(TablePrinter, CsvOutput) {
  TablePrinter t({"x", "y"});
  t.add_row({"1", "2"});
  std::ostringstream ss;
  t.write_csv(ss);
  EXPECT_EQ(ss.str(), "x,y\n1,2\n");
}

TEST(SeriesPrinter, EmitsCsvSeries) {
  SeriesPrinter s;
  s.add_point("fedwcm", 0, 0.1);
  s.add_point("fedwcm", 1, 0.4);
  s.add_point("fedavg", 0, 0.1);
  std::ostringstream ss;
  s.print(ss);
  const std::string out = ss.str();
  EXPECT_EQ(out.substr(0, 12), "series,x,y\nf");
  EXPECT_NE(out.find("fedwcm,1,0.4"), std::string::npos);
  EXPECT_NE(out.find("fedavg,0,0.1"), std::string::npos);
}

}  // namespace
}  // namespace fedwcm::core
