// Round-trip serialization tests, including corruption handling.
#include "fedwcm/core/serialize.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <iterator>
#include <limits>
#include <sstream>

namespace fedwcm::core {
namespace {

TEST(Serialize, PrimitivesRoundTrip) {
  std::stringstream ss;
  BinaryWriter w(ss);
  w.write_u32(0xDEADBEEF);
  w.write_u64(1ULL << 60);
  w.write_f32(3.25f);
  w.write_string("hello fedwcm");
  BinaryReader r(ss);
  EXPECT_EQ(r.read_u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.read_u64(), 1ULL << 60);
  EXPECT_FLOAT_EQ(r.read_f32(), 3.25f);
  EXPECT_EQ(r.read_string(), "hello fedwcm");
}

TEST(Serialize, FloatsAndMatrixRoundTrip) {
  std::stringstream ss;
  BinaryWriter w(ss);
  const std::vector<float> v{1.0f, -2.5f, 1e-8f};
  w.write_floats(v);
  Matrix m(2, 3);
  for (std::size_t i = 0; i < m.size(); ++i) m.data()[i] = float(i) * 0.5f;
  w.write_matrix(m);

  BinaryReader r(ss);
  EXPECT_EQ(r.read_floats(), v);
  const Matrix m2 = r.read_matrix();
  ASSERT_TRUE(m2.same_shape(m));
  for (std::size_t i = 0; i < m.size(); ++i)
    EXPECT_FLOAT_EQ(m2.data()[i], m.data()[i]);
}

TEST(Serialize, TruncatedStreamThrows) {
  std::stringstream ss;
  BinaryWriter w(ss);
  w.write_u32(7);
  BinaryReader r(ss);
  EXPECT_EQ(r.read_u32(), 7u);
  EXPECT_THROW(r.read_u64(), std::runtime_error);
}

TEST(Serialize, EmptyContainersRoundTrip) {
  std::stringstream ss;
  BinaryWriter w(ss);
  w.write_floats({});
  w.write_string("");
  BinaryReader r(ss);
  EXPECT_TRUE(r.read_floats().empty());
  EXPECT_TRUE(r.read_string().empty());
  EXPECT_TRUE(r.at_end());
}

// A length prefix is untrusted input: a corrupt count larger than the stream
// must throw up front, not attempt a multi-gigabyte allocation and then fail
// on a short read.
TEST(Serialize, FloatCountBeyondStreamThrows) {
  std::stringstream ss;
  BinaryWriter w(ss);
  w.write_u64(1ULL << 40);  // claims ~4 TiB of floats...
  w.write_f32(1.0f);        // ...backed by 4 bytes
  BinaryReader r(ss);
  EXPECT_THROW(r.read_floats(), std::runtime_error);
}

TEST(Serialize, StringLengthBeyondStreamThrows) {
  std::stringstream ss;
  BinaryWriter w(ss);
  w.write_u64(1000);
  w.write_u32(0x41414141);
  BinaryReader r(ss);
  EXPECT_THROW(r.read_string(), std::runtime_error);
}

TEST(Serialize, FloatCountOverflowingSizeThrows) {
  std::stringstream ss;
  BinaryWriter w(ss);
  // count * sizeof(float) wraps around u64 — must be caught as overflow, not
  // slip past the remaining-bytes comparison.
  w.write_u64(std::numeric_limits<std::uint64_t>::max() / 2);
  BinaryReader r(ss);
  EXPECT_THROW(r.read_floats(), std::runtime_error);
}

TEST(Serialize, MatrixDimensionOverflowThrows) {
  std::stringstream ss;
  BinaryWriter w(ss);
  w.write_u64(1ULL << 40);  // rows
  w.write_u64(1ULL << 40);  // cols: rows*cols overflows
  BinaryReader r(ss);
  EXPECT_THROW(r.read_matrix(), std::runtime_error);
}

TEST(Serialize, RemainingBytesTracksReads) {
  std::stringstream ss;
  BinaryWriter w(ss);
  w.write_u32(1);
  w.write_u32(2);
  BinaryReader r(ss);
  EXPECT_EQ(r.remaining_bytes(), 8u);
  r.read_u32();
  EXPECT_EQ(r.remaining_bytes(), 4u);
  r.read_u32();
  EXPECT_TRUE(r.at_end());
}

TEST(SaveLoadParams, FileRoundTrip) {
  const std::string path = testing::TempDir() + "/fedwcm_params_test.bin";
  const std::vector<float> params{0.1f, 0.2f, -0.3f, 4.0f};
  save_params(path, params);
  EXPECT_EQ(load_params(path), params);
  std::remove(path.c_str());
}

TEST(SaveLoadParams, BadMagicThrows) {
  const std::string path = testing::TempDir() + "/fedwcm_badmagic.bin";
  {
    std::ofstream os(path, std::ios::binary);
    const char junk[16] = {1, 2, 3, 4, 5, 6, 7, 8};
    os.write(junk, sizeof junk);
  }
  EXPECT_THROW(load_params(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(SaveLoadParams, MissingFileThrows) {
  EXPECT_THROW(load_params("/nonexistent/dir/params.bin"), std::runtime_error);
}

TEST(SaveLoadParams, TrailingGarbageRejected) {
  const std::string path = testing::TempDir() + "/fedwcm_trailing.bin";
  save_params(path, {1.0f, 2.0f});
  {
    std::ofstream os(path, std::ios::binary | std::ios::app);
    os.put('x');
  }
  EXPECT_THROW(load_params(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(SaveLoadParams, TruncatedPayloadRejected) {
  const std::string path = testing::TempDir() + "/fedwcm_truncated.bin";
  save_params(path, {1.0f, 2.0f, 3.0f, 4.0f});
  std::string bytes;
  {
    std::ifstream is(path, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(is), {});
  }
  {
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os.write(bytes.data(), std::streamsize(bytes.size() - 6));
  }
  EXPECT_THROW(load_params(path), std::runtime_error);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace fedwcm::core
