// Unit tests for the dense matrix kernels: every GEMM variant is checked
// against a naive triple loop on random inputs, elementwise ops against
// hand-computed values, and shape violations must throw.
#include "fedwcm/core/tensor.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "fedwcm/core/rng.hpp"

namespace fedwcm::core {
namespace {

Matrix random_matrix(std::size_t r, std::size_t c, Rng& rng) {
  Matrix m(r, c);
  for (float& v : m.span()) v = float(rng.normal());
  return m;
}

Matrix naive_matmul(const Matrix& a, const Matrix& b) {
  Matrix out(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < b.cols(); ++j) {
      double acc = 0.0;
      for (std::size_t k = 0; k < a.cols(); ++k) acc += double(a(i, k)) * b(k, j);
      out(i, j) = float(acc);
    }
  return out;
}

void expect_near(const Matrix& a, const Matrix& b, float tol = 1e-4f) {
  ASSERT_TRUE(a.same_shape(b)) << a.shape_str() << " vs " << b.shape_str();
  for (std::size_t i = 0; i < a.size(); ++i)
    ASSERT_NEAR(a.data()[i], b.data()[i], tol) << "at flat index " << i;
}

TEST(Matrix, ConstructionAndAccess) {
  Matrix m(2, 3, 1.5f);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m.size(), 6u);
  EXPECT_FLOAT_EQ(m(1, 2), 1.5f);
  m(0, 1) = -2.0f;
  EXPECT_FLOAT_EQ(m.row(0)[1], -2.0f);
}

TEST(Matrix, ReshapePreservesData) {
  Matrix m(2, 3);
  for (std::size_t i = 0; i < 6; ++i) m.data()[i] = float(i);
  m.reshape(3, 2);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_FLOAT_EQ(m(2, 1), 5.0f);
  EXPECT_THROW(m.reshape(4, 2), std::invalid_argument);
}

TEST(Matrix, DataSizeMismatchThrows) {
  EXPECT_THROW(Matrix(2, 3, std::vector<float>(5)), std::invalid_argument);
}

TEST(Matmul, MatchesNaiveOnRandomShapes) {
  Rng rng(7);
  for (auto [m, k, n] : {std::tuple<int, int, int>{1, 1, 1},
                         {3, 4, 5},
                         {8, 2, 7},
                         {16, 16, 16}}) {
    const Matrix a = random_matrix(m, k, rng);
    const Matrix b = random_matrix(k, n, rng);
    expect_near(matmul(a, b), naive_matmul(a, b));
  }
}

TEST(Matmul, AccumulateAddsToExisting) {
  Rng rng(8);
  const Matrix a = random_matrix(3, 4, rng);
  const Matrix b = random_matrix(4, 2, rng);
  Matrix out(3, 2, 1.0f);
  matmul(a, b, out, /*accumulate=*/true);
  const Matrix expected = naive_matmul(a, b);
  for (std::size_t i = 0; i < out.size(); ++i)
    EXPECT_NEAR(out.data()[i], expected.data()[i] + 1.0f, 1e-4f);
}

TEST(Matmul, InnerDimMismatchThrows) {
  Matrix a(2, 3), b(4, 2), out;
  EXPECT_THROW(matmul(a, b, out), std::invalid_argument);
}

TEST(MatmulTN, MatchesTransposedNaive) {
  Rng rng(9);
  const Matrix a = random_matrix(6, 3, rng);  // a^T is 3x6
  const Matrix b = random_matrix(6, 4, rng);
  Matrix at(3, 6);
  for (std::size_t i = 0; i < 6; ++i)
    for (std::size_t j = 0; j < 3; ++j) at(j, i) = a(i, j);
  Matrix out;
  matmul_tn(a, b, out);
  expect_near(out, naive_matmul(at, b));
}

TEST(MatmulNT, MatchesTransposedNaive) {
  Rng rng(10);
  const Matrix a = random_matrix(5, 3, rng);
  const Matrix b = random_matrix(4, 3, rng);  // b^T is 3x4
  Matrix bt(3, 4);
  for (std::size_t i = 0; i < 4; ++i)
    for (std::size_t j = 0; j < 3; ++j) bt(j, i) = b(i, j);
  Matrix out;
  matmul_nt(a, b, out);
  expect_near(out, naive_matmul(a, bt));
}

TEST(ElementwiseOps, AddSubHadamard) {
  Matrix a(2, 2, std::vector<float>{1, 2, 3, 4});
  Matrix b(2, 2, std::vector<float>{5, 6, 7, 8});
  Matrix out;
  add(a, b, out);
  expect_near(out, Matrix(2, 2, std::vector<float>{6, 8, 10, 12}));
  sub(a, b, out);
  expect_near(out, Matrix(2, 2, std::vector<float>{-4, -4, -4, -4}));
  hadamard(a, b, out);
  expect_near(out, Matrix(2, 2, std::vector<float>{5, 12, 21, 32}));
}

TEST(ElementwiseOps, ShapeMismatchThrows) {
  Matrix a(2, 2), b(2, 3), out;
  EXPECT_THROW(add(a, b, out), std::invalid_argument);
  EXPECT_THROW(sub(a, b, out), std::invalid_argument);
  EXPECT_THROW(hadamard(a, b, out), std::invalid_argument);
}

TEST(VectorOps, AxpyAndScale) {
  std::vector<float> x{1, 2, 3}, y{10, 20, 30};
  axpy(2.0f, x, y);
  EXPECT_FLOAT_EQ(y[0], 12.0f);
  EXPECT_FLOAT_EQ(y[2], 36.0f);
  scale(0.5f, y);
  EXPECT_FLOAT_EQ(y[1], 12.0f);
}

TEST(VectorOps, DotAndNorms) {
  std::vector<float> a{3, 4}, b{1, 2};
  EXPECT_FLOAT_EQ(dot(a, b), 11.0f);
  EXPECT_FLOAT_EQ(l2_norm(a), 5.0f);
  EXPECT_FLOAT_EQ(l2_norm_sq(a), 25.0f);
  EXPECT_FLOAT_EQ(l1_norm(a), 7.0f);
  EXPECT_FLOAT_EQ(max_abs(std::vector<float>{-9, 2}), 9.0f);
}

TEST(RowOps, BroadcastAndSum) {
  Matrix m(2, 3, std::vector<float>{1, 2, 3, 4, 5, 6});
  std::vector<float> bias{10, 20, 30};
  add_row_broadcast(m, bias);
  EXPECT_FLOAT_EQ(m(0, 0), 11.0f);
  EXPECT_FLOAT_EQ(m(1, 2), 36.0f);
  std::vector<float> sums(3);
  sum_rows(m, sums);
  EXPECT_FLOAT_EQ(sums[0], 11.0f + 14.0f);
  EXPECT_FLOAT_EQ(sums[2], 33.0f + 36.0f);
}

TEST(Softmax, RowsSumToOneAndOrderPreserved) {
  Matrix m(2, 3, std::vector<float>{1, 2, 3, -1, -1, -1});
  softmax_rows(m);
  for (std::size_t r = 0; r < 2; ++r) {
    float sum = 0.0f;
    for (std::size_t c = 0; c < 3; ++c) sum += m(r, c);
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
  }
  EXPECT_GT(m(0, 2), m(0, 1));
  EXPECT_NEAR(m(1, 0), 1.0f / 3.0f, 1e-5f);
}

TEST(Softmax, StableUnderLargeLogits) {
  Matrix m(1, 2, std::vector<float>{1000.0f, 999.0f});
  softmax_rows(m);
  EXPECT_TRUE(std::isfinite(m(0, 0)));
  EXPECT_GT(m(0, 0), m(0, 1));
}

TEST(LogSoftmax, MatchesLogOfSoftmax) {
  Matrix m(1, 4, std::vector<float>{0.5f, -1.0f, 2.0f, 0.0f});
  Matrix p = m;
  softmax_rows(p);
  log_softmax_rows(m);
  for (std::size_t c = 0; c < 4; ++c)
    EXPECT_NEAR(m(0, c), std::log(p(0, c)), 1e-5f);
}

TEST(ArgmaxRows, PicksFirstMaximum) {
  Matrix m(2, 3, std::vector<float>{1, 3, 2, 5, 5, 4});
  const auto idx = argmax_rows(m);
  EXPECT_EQ(idx[0], 1u);
  EXPECT_EQ(idx[1], 0u);  // ties resolve to the first occurrence
}

}  // namespace
}  // namespace fedwcm::core
