// HTML dashboard renderer: structure, self-containment, escaping, and the
// embedded report-data JSON blob (the report_selfcheck ctest additionally
// validates it against a real simulation run end to end).
#include "fedwcm/analysis/report_html.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "fedwcm/obs/json.hpp"

namespace fedwcm::analysis {
namespace {

fl::SimulationResult sample_result(bool with_diag = true) {
  fl::SimulationResult res;
  res.algorithm = "fedwcm";
  res.final_accuracy = 0.625f;
  res.best_accuracy = 0.6875f;
  res.tail_mean_accuracy = 0.5f;
  res.faults_dropped = 1;
  for (std::size_t r = 0; r < 4; ++r) {
    fl::RoundRecord rec;
    rec.round = 2 * r;
    rec.test_accuracy = 0.125f * float(r + 1);
    rec.train_loss = 2.0f - 0.25f * float(r);
    rec.alpha = 0.0625f * float(r);
    rec.momentum_norm = 0.5f + 0.125f * float(r);
    rec.evaluated = true;
    rec.bytes_up = 4096 * (r + 1);
    rec.bytes_down = 2048 * (r + 1);
    if (with_diag) {
      rec.diagnostics = true;
      rec.momentum_alignment = 0.75f - 0.25f * float(r);
      rec.alignment_min = -0.125f;
      rec.update_norm_mean = 1.25f;
      rec.update_norm_cv = 0.375f;
      rec.drift_norm = 0.875f;
      rec.population = true;
      rec.norm_p5 = 0.5f;
      rec.norm_p50 = 1.0f;
      rec.norm_p95 = 2.0f + 0.5f * float(r);
    }
    rec.per_class_accuracy = {0.9375f, 0.75f, 0.25f * float(r)};
    res.history.push_back(rec);
  }
  res.per_class_accuracy = res.history.back().per_class_accuracy;
  return res;
}

obs::json::Value extract_data(const std::string& html) {
  const std::string open =
      "<script id=\"report-data\" type=\"application/json\">";
  const std::size_t begin = html.find(open);
  EXPECT_NE(begin, std::string::npos);
  const std::size_t start = begin + open.size();
  const std::size_t end = html.find("</script>", start);
  EXPECT_NE(end, std::string::npos);
  obs::json::Value value;
  std::string error;
  EXPECT_TRUE(obs::json::parse(html.substr(start, end - start), value, error))
      << error;
  return value;
}

TEST(ReportHtml, ContainsAllChartSections) {
  const std::string html = render_html_report(sample_result());
  for (const char* expected :
       {"<!DOCTYPE html>", "Test accuracy", "Train loss", "Momentum value",
        "Momentum alignment", "Client update norms",
        "Client update-norm quantiles", "Head vs tail recall",
        "Per-class recall over rounds", "Communication per round",
        "History table", "Final accuracy", "Tail-mean accuracy"})
    EXPECT_NE(html.find(expected), std::string::npos) << expected;
  // Charts are real inline SVG with the 2px line mark spec.
  EXPECT_NE(html.find("<svg viewBox="), std::string::npos);
  EXPECT_NE(html.find("polyline"), std::string::npos);
}

TEST(ReportHtml, DiagnosticsChartsOnlyWhenRecorded) {
  const std::string html = render_html_report(sample_result(false));
  EXPECT_EQ(html.find("Momentum alignment"), std::string::npos);
  EXPECT_EQ(html.find("Client update norms"), std::string::npos);
  // The quantile band card needs population telemetry, absent here too.
  EXPECT_EQ(html.find("Client update-norm quantiles"), std::string::npos);
  // The recall charts don't depend on --diag.
  EXPECT_NE(html.find("Per-class recall over rounds"), std::string::npos);
}

TEST(ReportHtml, SelfContainedNoExternalReferences) {
  const std::string html = render_html_report(sample_result());
  for (const char* banned : {"http://", "https://", "src=", "url(", "@import",
                             "<link", "<img", "<iframe"})
    EXPECT_EQ(html.find(banned), std::string::npos) << banned;
}

TEST(ReportHtml, DataBlobRoundTripsFloatExactly) {
  const fl::SimulationResult res = sample_result();
  const obs::json::Value data = extract_data(render_html_report(res));
  EXPECT_EQ(data.find("algorithm")->as_string(), "fedwcm");
  EXPECT_TRUE(data.find("diagnostics")->as_bool());
  EXPECT_EQ(float(data.find("final_accuracy")->as_number()),
            res.final_accuracy);

  const obs::json::Value* rounds = data.find("rounds");
  ASSERT_TRUE(rounds && rounds->is_array());
  ASSERT_EQ(rounds->as_array().size(), res.history.size());
  const obs::json::Value* series = data.find("series");
  ASSERT_TRUE(series && series->is_object());
  for (const char* name :
       {"test_accuracy", "train_loss", "alpha", "momentum_norm",
        "momentum_alignment", "alignment_min", "update_norm_mean",
        "update_norm_cv", "drift_norm", "bytes_up", "bytes_down", "norm_p5",
        "norm_p50", "norm_p95"}) {
    const obs::json::Value* s = series->find(name);
    ASSERT_TRUE(s && s->is_array()) << name;
    EXPECT_EQ(s->as_array().size(), res.history.size()) << name;
  }
  for (std::size_t i = 0; i < res.history.size(); ++i) {
    EXPECT_EQ(rounds->as_array()[i].as_number(), double(res.history[i].round));
    EXPECT_EQ(float(series->find("test_accuracy")->as_array()[i].as_number()),
              res.history[i].test_accuracy);
    EXPECT_EQ(
        float(series->find("momentum_alignment")->as_array()[i].as_number()),
        res.history[i].momentum_alignment);
  }
  const obs::json::Value* recall = data.find("per_class_recall");
  ASSERT_TRUE(recall && recall->is_array());
  ASSERT_EQ(recall->as_array().size(), res.history.size());
  for (std::size_t r = 0; r < res.history.size(); ++r) {
    const auto& row = recall->as_array()[r].as_array();
    ASSERT_EQ(row.size(), res.history[r].per_class_accuracy.size());
    for (std::size_t c = 0; c < row.size(); ++c)
      EXPECT_EQ(float(row[c].as_number()),
                res.history[r].per_class_accuracy[c]);
  }
}

TEST(ReportHtml, EscapesMetaAndAlgorithmStrings) {
  fl::SimulationResult res = sample_result();
  res.algorithm = "fed<script>&\"wcm";
  HtmlReportMeta meta;
  meta.title = "a <b> & \"c\"";
  meta.config = {{"k<", "v>"}};
  const std::string html = render_html_report(res, meta);
  EXPECT_NE(html.find("a &lt;b&gt; &amp; &quot;c&quot;"), std::string::npos);
  EXPECT_EQ(html.find("<script>"), std::string::npos);
  // The JSON blob escapes the quote rather than truncating the string.
  const obs::json::Value data = extract_data(html);
  EXPECT_EQ(data.find("algorithm")->as_string(), res.algorithm);
}

TEST(ReportHtml, EmptyHistoryRendersWithoutCharts) {
  fl::SimulationResult res;
  res.algorithm = "fedavg";
  const std::string html = render_html_report(res);
  EXPECT_NE(html.find("No evaluated rounds"), std::string::npos);
  EXPECT_EQ(html.find("polyline"), std::string::npos);
  const obs::json::Value data = extract_data(html);
  EXPECT_TRUE(data.find("rounds")->as_array().empty());
}

TEST(ReportHtml, WriteCreatesFileAndThrowsOnBadPath) {
  const std::string path = testing::TempDir() + "/fedwcm_report.html";
  write_html_report(path, sample_result());
  std::ifstream in(path);
  EXPECT_TRUE(in.is_open());
  std::ostringstream ss;
  ss << in.rdbuf();
  EXPECT_NE(ss.str().find("</html>"), std::string::npos);
  std::remove(path.c_str());
  EXPECT_THROW(write_html_report("/nonexistent/dir/x.html", sample_result()),
               std::runtime_error);
}

}  // namespace
}  // namespace fedwcm::analysis
