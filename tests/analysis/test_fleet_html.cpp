// Fleet dashboard renderer (analysis/fleet_html.hpp): the self-containment
// contract (no external assets, ever — dashboards get opened from mail
// attachments and airgapped CI artifact tabs), the `fleet-data` JSON blob
// faithfully embedding the records, hostile strings kept inert inside the
// blob, and the chart/grouping structure over a small synthetic fleet.
#include <gtest/gtest.h>

#include <cstddef>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "fedwcm/analysis/fleet_html.hpp"
#include "fedwcm/obs/json.hpp"
#include "fedwcm/obs/runstore.hpp"

namespace {

using fedwcm::analysis::FleetHtmlOptions;
using fedwcm::obs::RunRecord;

std::vector<RunRecord> small_fleet(std::size_t n) {
  std::vector<RunRecord> records;
  for (std::size_t i = 0; i < n; ++i) {
    RunRecord r;
    r.kind = "run";
    r.created_us = 1'000'000ull * (i + 1);
    r.config_fingerprint = (i % 2 == 0) ? "cfg-even" : "cfg-odd";
    r.flags = "--seed " + std::to_string(i);
    r.machine.cpu_model = "Fleet Test CPU";
    r.machine.cores = 8;
    r.machine.kernel = "Linux fleet";
    r.metrics["final_accuracy"] = 0.84 + 0.001 * double(i % 4);
    r.metrics["wall_ms"] = 1000.0 + 10.0 * double(i);
    r.counters["rounds"] = 5;
    records.push_back(std::move(r));
  }
  return records;
}

/// Extracts and parses the fleet-data JSON blob; fails the test if absent.
fedwcm::obs::json::Value data_blob(const std::string& html) {
  const std::string open =
      "<script id=\"fleet-data\" type=\"application/json\">";
  const std::size_t begin = html.find(open);
  EXPECT_NE(begin, std::string::npos) << "fleet-data blob missing";
  const std::size_t end = html.find("</script>", begin);
  fedwcm::obs::json::Value v;
  std::string error;
  EXPECT_TRUE(fedwcm::obs::json::parse(
      html.substr(begin + open.size(), end - begin - open.size()), v, error))
      << error;
  return v;
}

TEST(FleetHtml, SelfContainedWithChartsAndGroups) {
  const std::string html = fedwcm::analysis::render_fleet_html(small_fleet(8));
  EXPECT_EQ(html.find("http://"), std::string::npos);
  EXPECT_EQ(html.find("https://"), std::string::npos);
  EXPECT_EQ(html.find("src="), std::string::npos);
  EXPECT_EQ(html.find("@import"), std::string::npos);
  EXPECT_NE(html.find("<svg"), std::string::npos);
  EXPECT_NE(html.find("<style"), std::string::npos);
  EXPECT_NE(html.find("prefers-color-scheme"), std::string::npos);
  // Both config groups render, first-appearance order.
  const std::size_t even = html.find("cfg-even");
  const std::size_t odd = html.find("cfg-odd");
  ASSERT_NE(even, std::string::npos);
  ASSERT_NE(odd, std::string::npos);
  EXPECT_LT(even, odd);
}

TEST(FleetHtml, DataBlobEmbedsEveryRecordFaithfully) {
  const std::vector<RunRecord> fleet = small_fleet(6);
  const auto v = data_blob(fedwcm::analysis::render_fleet_html(fleet));
  const auto* count = v.find("record_count");
  ASSERT_TRUE(count && count->is_number());
  EXPECT_EQ(std::size_t(count->as_number()), fleet.size());
  const auto* records = v.find("records");
  ASSERT_TRUE(records && records->is_array());
  ASSERT_EQ(records->as_array().size(), fleet.size());
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    const auto& entry = records->as_array()[i];
    const auto* created = entry.find("created_us");
    ASSERT_TRUE(created && created->is_number());
    EXPECT_EQ(std::uint64_t(created->as_number()), fleet[i].created_us);
    const auto* metrics = entry.find("metrics");
    ASSERT_TRUE(metrics != nullptr);
    const auto* acc = metrics->find("final_accuracy");
    ASSERT_TRUE(acc && acc->is_number());
    EXPECT_DOUBLE_EQ(acc->as_number(), fleet[i].metrics.at("final_accuracy"));
  }
}

TEST(FleetHtml, HostileStringsStayInertInsideTheBlob) {
  std::vector<RunRecord> fleet = small_fleet(2);
  fleet[0].flags = "--note \"</script><script>alert(1)</script>\"";
  fleet[0].config_fingerprint = "cfg <&> \"quoted\"";
  const std::string html = fedwcm::analysis::render_fleet_html(fleet);
  // The raw close tag must never appear inside the data blob: every `<` is
  // emitted as the backslash-u003c escape, so the embedded payload cannot terminate
  // the script block early.
  const std::string open =
      "<script id=\"fleet-data\" type=\"application/json\">";
  const std::size_t begin = html.find(open);
  ASSERT_NE(begin, std::string::npos);
  const std::size_t end = html.find("</script>", begin);
  const std::string blob =
      html.substr(begin + open.size(), end - begin - open.size());
  EXPECT_EQ(blob.find("</script>"), std::string::npos);
  EXPECT_EQ(blob.find('<'), std::string::npos);
  // And it still parses back to the hostile original.
  const auto v = data_blob(html);
  const auto* records = v.find("records");
  ASSERT_TRUE(records && records->is_array());
  const auto* flags = records->as_array()[0].find("flags");
  ASSERT_TRUE(flags && flags->is_string());
  EXPECT_EQ(flags->as_string(), fleet[0].flags);
}

TEST(FleetHtml, ExplicitMetricPanelAndEmptyStore) {
  FleetHtmlOptions options;
  options.title = "Custom fleet title";
  options.metrics = {"wall_ms"};
  const std::string html =
      fedwcm::analysis::render_fleet_html(small_fleet(4), options);
  EXPECT_NE(html.find("Custom fleet title"), std::string::npos);
  EXPECT_NE(html.find("wall_ms"), std::string::npos);
  const auto v = data_blob(html);
  const auto* metrics = v.find("metrics");
  ASSERT_TRUE(metrics && metrics->is_array());
  ASSERT_EQ(metrics->as_array().size(), 1u);
  EXPECT_EQ(metrics->as_array()[0].as_string(), "wall_ms");

  // An empty history must render a valid (if boring) page, not crash.
  const std::string empty = fedwcm::analysis::render_fleet_html({});
  const auto ev = data_blob(empty);
  const auto* ecount = ev.find("record_count");
  ASSERT_TRUE(ecount && ecount->is_number());
  EXPECT_EQ(ecount->as_number(), 0.0);
}

TEST(FleetHtml, WriteFleetHtmlWritesAndThrowsOnBadPath) {
  const std::string path = testing::TempDir() + "/fleet_test.html";
  fedwcm::analysis::write_fleet_html(path, small_fleet(3));
  std::ifstream is(path);
  ASSERT_TRUE(is.good());
  std::ostringstream buf;
  buf << is.rdbuf();
  EXPECT_NE(buf.str().find("fleet-data"), std::string::npos);
  EXPECT_THROW(fedwcm::analysis::write_fleet_html(
                   testing::TempDir() + "/no_such_dir_xyz/fleet.html",
                   small_fleet(1)),
               std::exception);
}

}  // namespace
