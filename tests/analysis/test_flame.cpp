// Folded-stack parsing and SVG flamegraph rendering: format strictness,
// well-formedness of the emitted document, and byte determinism.
#include "fedwcm/analysis/flame.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace fedwcm::analysis {
namespace {

TEST(Flamegraph, ParsesWellFormedFolded) {
  std::vector<FoldedStack> stacks;
  std::string error;
  ASSERT_TRUE(parse_folded("main;run;train 40\nmain;run;eval 2\n\nmain 1\n",
                           stacks, error))
      << error;
  ASSERT_EQ(stacks.size(), 3u);
  EXPECT_EQ(stacks[0].frames,
            (std::vector<std::string>{"main", "run", "train"}));
  EXPECT_EQ(stacks[0].count, 40u);
  EXPECT_EQ(stacks[2].frames, (std::vector<std::string>{"main"}));
  EXPECT_EQ(stacks[2].count, 1u);
}

TEST(Flamegraph, EmptyInputIsValidAndYieldsNoStacks) {
  std::vector<FoldedStack> stacks;
  std::string error;
  EXPECT_TRUE(parse_folded("", stacks, error));
  EXPECT_TRUE(stacks.empty());
}

TEST(Flamegraph, RejectsMalformedFoldedLines) {
  std::vector<FoldedStack> stacks;
  std::string error;
  // No count.
  EXPECT_FALSE(parse_folded("main;run\n", stacks, error));
  EXPECT_NE(error.find("line 1"), std::string::npos) << error;
  // Non-numeric count.
  EXPECT_FALSE(parse_folded("main;run many\n", stacks, error));
  // Count but no frames.
  EXPECT_FALSE(parse_folded("ok 1\n; 5\n", stacks, error));
  EXPECT_NE(error.find("line 2"), std::string::npos) << error;
}

TEST(Flamegraph, RendersWellFormedDeterministicSvg) {
  std::vector<FoldedStack> stacks;
  std::string error;
  ASSERT_TRUE(parse_folded(
      "main;fl::run;nn::forward 60\nmain;fl::run;nn::backward 30\n"
      "main;io 10\n",
      stacks, error))
      << error;
  FlamegraphOptions options;
  options.title = "unit test";
  const std::string svg = render_flamegraph(stacks, options);
  EXPECT_EQ(svg.rfind("<?xml", 0), 0u);
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  EXPECT_NE(svg.find("unit test"), std::string::npos);
  EXPECT_NE(svg.find("100 samples"), std::string::npos);
  EXPECT_NE(svg.find("nn::forward"), std::string::npos);
  // Every opened frame group closes.
  std::size_t opens = 0, closes = 0, pos = 0;
  while ((pos = svg.find("<g>", pos)) != std::string::npos) ++opens, pos += 3;
  pos = 0;
  while ((pos = svg.find("</g>", pos)) != std::string::npos) ++closes, pos += 4;
  EXPECT_EQ(opens, closes);
  EXPECT_GT(opens, 0u);
  // Same input, same bytes: CI artifacts diff cleanly.
  EXPECT_EQ(render_flamegraph(stacks, options), svg);
}

TEST(Flamegraph, EscapesMarkupInFrameNamesAndTitle) {
  std::vector<FoldedStack> stacks;
  std::string error;
  ASSERT_TRUE(parse_folded("a<b>&\"c\";leaf 5\n", stacks, error)) << error;
  FlamegraphOptions options;
  options.title = "<script>\"x\"&</script>";
  const std::string svg = render_flamegraph(stacks, options);
  EXPECT_EQ(svg.find("<script>"), std::string::npos);
  EXPECT_EQ(svg.find("a<b>"), std::string::npos);
  EXPECT_NE(svg.find("a&lt;b&gt;&amp;&quot;c&quot;"), std::string::npos);
}

TEST(Flamegraph, EmptyProfileStillRendersADocument) {
  const std::string svg = render_flamegraph({}, FlamegraphOptions{});
  EXPECT_EQ(svg.rfind("<?xml", 0), 0u);
  EXPECT_NE(svg.find("0 samples"), std::string::npos);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
}

}  // namespace
}  // namespace fedwcm::analysis
