// Robust trend statistics and the MAD-band gate (analysis/trend.hpp): the
// math behind `obsctl trend`/`gate` and the fleet dashboard bands. The suite
// pins the robustness claims the header makes — a single outlier must not
// widen the band, a flat series must never flag a change-point, a cold store
// must abstain rather than fail — and the exact windowing rule that the
// newest value is judged against a band it did not contribute to.
#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <vector>

#include "fedwcm/analysis/compare.hpp"
#include "fedwcm/analysis/trend.hpp"
#include "fedwcm/obs/runstore.hpp"

namespace {

using fedwcm::analysis::GateDirection;
using fedwcm::analysis::GateVerdict;
using fedwcm::analysis::TrendOptions;
using fedwcm::obs::RunRecord;

// ---------------------------------------------------------------------------
// Primitives

TEST(TrendMath, MedianOddEvenAndEmpty) {
  EXPECT_DOUBLE_EQ(fedwcm::analysis::median_of({}), 0.0);
  EXPECT_DOUBLE_EQ(fedwcm::analysis::median_of({3.0}), 3.0);
  EXPECT_DOUBLE_EQ(fedwcm::analysis::median_of({5.0, 1.0, 3.0}), 3.0);
  EXPECT_DOUBLE_EQ(fedwcm::analysis::median_of({4.0, 1.0, 3.0, 2.0}), 2.5);
}

TEST(TrendMath, MadSigmaIsRobustToOneOutlier) {
  // Nine values at 10 +- 1 and one wild outlier: the MAD ignores it.
  std::vector<double> values = {9, 10, 11, 9, 10, 11, 9, 10, 1000};
  const double med = fedwcm::analysis::median_of(values);
  EXPECT_DOUBLE_EQ(med, 10.0);
  const double sigma = fedwcm::analysis::mad_sigma(values, med);
  EXPECT_DOUBLE_EQ(sigma, 1.4826 * 1.0);
  EXPECT_DOUBLE_EQ(fedwcm::analysis::mad_sigma({5.0}, 5.0), 0.0);
}

TEST(TrendMath, TheilSenRecoversALinearSlopeThroughOutliers) {
  // y = 2x with one corrupted point: the median of pairwise slopes holds.
  std::vector<double> values;
  for (std::size_t i = 0; i < 9; ++i) values.push_back(2.0 * double(i));
  values[4] = -100.0;
  EXPECT_DOUBLE_EQ(fedwcm::analysis::theil_sen_slope(values), 2.0);
  EXPECT_DOUBLE_EQ(fedwcm::analysis::theil_sen_slope({1.0}), 0.0);
}

TEST(TrendMath, ChangePointFindsAStepAndIgnoresFlatOrShortSeries) {
  // Clear level shift at index 4.
  const std::vector<double> step = {1, 1, 1, 1, 5, 5, 5, 5};
  EXPECT_EQ(fedwcm::analysis::change_point(step, 1.0), 4);
  // Flat series: no split to find.
  EXPECT_EQ(fedwcm::analysis::change_point({2, 2, 2, 2, 2, 2}, 0.0), -1);
  // Too short for two segments of 2.
  EXPECT_EQ(fedwcm::analysis::change_point({1, 5, 5}, 0.0), -1);
  // Separation below min_gap: the shift is real but not significant.
  EXPECT_EQ(fedwcm::analysis::change_point(step, 10.0), -1);
}

// ---------------------------------------------------------------------------
// Windowed summary

TEST(TrendSummary, NewestValueIsExcludedFromItsOwnBand) {
  // Baseline of eight 1.0s, newest 9.0: were the newest folded into the
  // band's median/MAD it could mask itself. The band must stay centered on
  // 1.0 with zero spread, and the newest must sit above it.
  std::vector<double> values(8, 1.0);
  values.push_back(9.0);
  TrendOptions options;
  const auto t = fedwcm::analysis::summarize_trend(values, options);
  EXPECT_DOUBLE_EQ(t.median, 1.0);
  EXPECT_DOUBLE_EQ(t.spread, 0.0);
  EXPECT_DOUBLE_EQ(t.latest, 9.0);
  EXPECT_TRUE(t.latest_above);
  EXPECT_FALSE(t.latest_below);
}

TEST(TrendSummary, WindowLimitsToLastN) {
  // 30 old zeros then 10 ones; a 10-wide window must see only ones.
  std::vector<double> values(30, 0.0);
  values.insert(values.end(), 10, 1.0);
  TrendOptions options;
  options.last = 10;
  const auto t = fedwcm::analysis::summarize_trend(values, options);
  EXPECT_EQ(t.count, 10u);
  EXPECT_DOUBLE_EQ(t.median, 1.0);
  EXPECT_FALSE(t.latest_above);
  EXPECT_FALSE(t.latest_below);
}

TEST(TrendSummary, MinBandPutsAFloorUnderAZeroSpreadHistory) {
  // Bitwise-stable history (spread 0): without a floor any wobble alarms.
  std::vector<double> values(10, 0.85);
  values.push_back(0.8504);
  TrendOptions options;
  const auto tight = fedwcm::analysis::summarize_trend(values, options);
  EXPECT_TRUE(tight.latest_above);
  options.min_band = 0.001;
  const auto floored = fedwcm::analysis::summarize_trend(values, options);
  EXPECT_FALSE(floored.latest_above);
  EXPECT_DOUBLE_EQ(floored.band_hi, 0.851);
  EXPECT_DOUBLE_EQ(floored.band_lo, 0.849);
}

// ---------------------------------------------------------------------------
// Gate

std::vector<double> wobbly_history(std::size_t n) {
  // +-0.004 wobble around 0.85, the same in-band shape the selfcheck uses.
  std::vector<double> values;
  for (std::size_t i = 0; i < n; ++i)
    values.push_back(0.85 + 0.004 * double(int(i % 5) - 2) / 2.0);
  return values;
}

TEST(Gate, PassesInBandFailsInjectedRegressionByDirection) {
  TrendOptions options;
  std::vector<double> values = wobbly_history(20);
  const auto in_band =
      fedwcm::analysis::evaluate_gate(values, options, GateDirection::kBelow);
  EXPECT_EQ(in_band.verdict, GateVerdict::kPass);

  values.push_back(0.70);  // Far outside 3x the MAD band.
  const auto fail =
      fedwcm::analysis::evaluate_gate(values, options, GateDirection::kBelow);
  EXPECT_EQ(fail.verdict, GateVerdict::kFail);
  EXPECT_NE(fail.detail.find("BELOW"), std::string::npos);
  // The same drop gated above-only is not a regression.
  const auto above =
      fedwcm::analysis::evaluate_gate(values, options, GateDirection::kAbove);
  EXPECT_EQ(above.verdict, GateVerdict::kPass);
  // kBoth catches either side.
  const auto both =
      fedwcm::analysis::evaluate_gate(values, options, GateDirection::kBoth);
  EXPECT_EQ(both.verdict, GateVerdict::kFail);
}

TEST(Gate, AbstainsOnColdStore) {
  TrendOptions options;  // min_history = 4.
  const auto empty =
      fedwcm::analysis::evaluate_gate({}, options, GateDirection::kBoth);
  EXPECT_EQ(empty.verdict, GateVerdict::kInsufficientHistory);
  // Four values = three prior runs: still one short of the default.
  const auto three_prior = fedwcm::analysis::evaluate_gate(
      {0.85, 0.85, 0.85, 0.1}, options, GateDirection::kBoth);
  EXPECT_EQ(three_prior.verdict, GateVerdict::kInsufficientHistory);
  // Five values = four prior runs: gates, and the outlier fails.
  const auto four_prior = fedwcm::analysis::evaluate_gate(
      {0.85, 0.85, 0.85, 0.85, 0.1}, options, GateDirection::kBoth);
  EXPECT_EQ(four_prior.verdict, GateVerdict::kFail);
}

TEST(Gate, ParseDirectionNames) {
  GateDirection d;
  ASSERT_TRUE(fedwcm::analysis::parse_gate_direction("above", d));
  EXPECT_EQ(d, GateDirection::kAbove);
  ASSERT_TRUE(fedwcm::analysis::parse_gate_direction("below", d));
  EXPECT_EQ(d, GateDirection::kBelow);
  ASSERT_TRUE(fedwcm::analysis::parse_gate_direction("both", d));
  EXPECT_EQ(d, GateDirection::kBoth);
  EXPECT_FALSE(fedwcm::analysis::parse_gate_direction("sideways", d));
}

// ---------------------------------------------------------------------------
// Series extraction over records

TEST(MetricSeries, FiltersByConfigAndKindAndFoldsCounters) {
  std::vector<RunRecord> records;
  for (std::size_t i = 0; i < 6; ++i) {
    RunRecord r;
    r.kind = (i % 2 == 0) ? "run" : "bench";
    r.config_fingerprint = (i < 3) ? "cfg-a" : "cfg-b";
    r.metrics["final_accuracy"] = 0.1 * double(i);
    r.counters["rounds"] = i;
    records.push_back(std::move(r));
  }
  EXPECT_EQ(fedwcm::analysis::metric_series(records, "final_accuracy").size(),
            6u);
  const auto cfg_a =
      fedwcm::analysis::metric_series(records, "final_accuracy", "cfg-a");
  ASSERT_EQ(cfg_a.size(), 3u);
  EXPECT_DOUBLE_EQ(cfg_a[2], 0.2);
  const auto bench_only =
      fedwcm::analysis::metric_series(records, "rounds", "", "bench");
  ASSERT_EQ(bench_only.size(), 3u);
  EXPECT_DOUBLE_EQ(bench_only[0], 1.0);
  EXPECT_TRUE(
      fedwcm::analysis::metric_series(records, "missing_metric").empty());
}

TEST(IngestRunSummary, MapsFieldsAndOmitsUnrecordedOnes) {
  fedwcm::analysis::RunSummary summary;
  summary.algorithm = "fedwcm";
  summary.final_accuracy = 0.81;
  summary.best_accuracy = 0.83;
  summary.tail_mean_accuracy = 0.80;
  summary.min_class_recall = 0.4;
  summary.final_qr = 0.9;
  summary.mean_round_wall_ms = 120.0;
  summary.faults_dropped = 2;
  summary.rounds = 40;
  summary.aborted = true;
  RunRecord record;
  fedwcm::analysis::ingest_run_summary(summary, record);
  EXPECT_DOUBLE_EQ(record.metrics.at("final_accuracy"), 0.81);
  EXPECT_DOUBLE_EQ(record.metrics.at("min_class_recall"), 0.4);
  EXPECT_DOUBLE_EQ(record.metrics.at("final_qr"), 0.9);
  EXPECT_EQ(record.counters.at("faults.dropped"), 2u);
  EXPECT_EQ(record.counters.at("rounds"), 40u);
  EXPECT_EQ(record.counters.at("watchdog.aborted"), 1u);

  // Sentinel fields (<0 recall/wall, -1 q_r) must not invent metrics.
  fedwcm::analysis::RunSummary bare;
  RunRecord bare_record;
  fedwcm::analysis::ingest_run_summary(bare, bare_record);
  EXPECT_EQ(bare_record.metrics.count("min_class_recall"), 0u);
  EXPECT_EQ(bare_record.metrics.count("final_qr"), 0u);
  EXPECT_EQ(bare_record.metrics.count("mean_round_wall_ms"), 0u);
}

}  // namespace
