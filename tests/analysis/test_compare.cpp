// Run-to-run comparison: JSONL loading, thresholds, and verdicts.
#include <gtest/gtest.h>

#include <fstream>
#include <string>

#include "fedwcm/analysis/compare.hpp"

namespace fedwcm::analysis {
namespace {

std::string write_temp(const std::string& name, const std::string& content) {
  const std::string path = testing::TempDir() + "/" + name;
  std::ofstream os(path);
  os << content;
  return path;
}

/// A minimal two-round artifact in the write_history_jsonl format.
std::string artifact(double final_acc, double recall0, bool aborted,
                     double wall_ms) {
  std::string text;
  for (int round : {0, 2}) {
    text += "{\"algorithm\":\"fedwcm\",\"round\":" + std::to_string(round) +
            ",\"test_accuracy\":0.5,\"round_wall_ms\":" +
            std::to_string(wall_ms) + ",\"per_class_accuracy\":[0.9,0.8]}\n";
  }
  text += "{\"algorithm\":\"fedwcm\",\"summary\":true,\"final_accuracy\":" +
          std::to_string(final_acc) +
          ",\"best_accuracy\":" + std::to_string(final_acc) +
          ",\"tail_mean_accuracy\":" + std::to_string(final_acc) +
          ",\"faults_dropped\":3,\"faults_rejected\":1,\"faults_straggled\":0" +
          ",\"aborted\":" + (aborted ? "true" : "false") +
          ",\"per_class_accuracy\":[" + std::to_string(recall0) + ",0.8]}\n";
  return text;
}

TEST(Compare, LoadsSummaryAndHistory) {
  const std::string path =
      write_temp("compare_load.jsonl", artifact(0.71, 0.42, false, 12.5));
  RunSummary summary;
  std::string error;
  ASSERT_TRUE(load_run_summary(path, summary, error)) << error;
  EXPECT_EQ(summary.algorithm, "fedwcm");
  EXPECT_NEAR(summary.final_accuracy, 0.71, 1e-9);
  EXPECT_NEAR(summary.min_class_recall, 0.42, 1e-9);
  EXPECT_NEAR(summary.mean_round_wall_ms, 12.5, 1e-9);
  EXPECT_EQ(summary.rounds, 2u);
  EXPECT_EQ(summary.faults_dropped, 3u);
  EXPECT_FALSE(summary.aborted);
}

TEST(Compare, LoadToleratesNullNumbers) {
  // A diverged run serializes NaN as null; the loader must not choke.
  const std::string path = write_temp(
      "compare_null.jsonl",
      "{\"algorithm\":\"x\",\"round\":0,\"train_loss\":null,"
      "\"round_wall_ms\":null}\n"
      "{\"algorithm\":\"x\",\"summary\":true,\"final_accuracy\":null,"
      "\"best_accuracy\":0.2,\"aborted\":true,\"per_class_accuracy\":[null]}\n");
  RunSummary summary;
  std::string error;
  ASSERT_TRUE(load_run_summary(path, summary, error)) << error;
  EXPECT_EQ(summary.final_accuracy, 0.0);  // null -> fallback.
  EXPECT_NEAR(summary.best_accuracy, 0.2, 1e-9);
  EXPECT_TRUE(summary.aborted);
  EXPECT_LT(summary.min_class_recall, 0.0);  // All-null recalls: unknown.
}

TEST(Compare, LoadFailuresAreReported) {
  RunSummary summary;
  std::string error;
  EXPECT_FALSE(load_run_summary("/no/such/file.jsonl", summary, error));
  const std::string no_summary = write_temp(
      "compare_nosummary.jsonl", "{\"algorithm\":\"x\",\"round\":0}\n");
  EXPECT_FALSE(load_run_summary(no_summary, summary, error));
  EXPECT_NE(error.find("no summary line"), std::string::npos);
  const std::string bad_json =
      write_temp("compare_badjson.jsonl", "{not json\n");
  EXPECT_FALSE(load_run_summary(bad_json, summary, error));
}

TEST(Compare, IdenticalRunsPassWithZeroSlack) {
  RunSummary run;
  run.final_accuracy = run.best_accuracy = run.tail_mean_accuracy = 0.7;
  run.min_class_recall = 0.4;
  run.mean_round_wall_ms = 10.0;
  CompareThresholds zero;
  zero.accuracy_drop = 0.0;
  zero.recall_drop = 0.0;
  zero.time_factor = 1.0;
  const CompareReport report = compare_runs(run, run, zero);
  EXPECT_TRUE(report.ok()) << format_report(run, run, report);
}

TEST(Compare, AccuracyRegressionFails) {
  RunSummary baseline, candidate;
  baseline.final_accuracy = baseline.best_accuracy =
      baseline.tail_mean_accuracy = 0.70;
  candidate = baseline;
  candidate.final_accuracy = 0.66;  // Drop 0.04 > 0.01 default.
  const CompareReport report = compare_runs(baseline, candidate, {});
  EXPECT_FALSE(report.ok());
  ASSERT_EQ(report.failures.size(), 1u);
  EXPECT_NE(report.failures[0].find("final_accuracy"), std::string::npos);
  // Improvements never fail.
  candidate.final_accuracy = 0.75;
  EXPECT_TRUE(compare_runs(baseline, candidate, {}).ok());
}

TEST(Compare, RecallCollapseFails) {
  RunSummary baseline, candidate;
  baseline.min_class_recall = 0.40;
  candidate.min_class_recall = 0.10;  // Drop 0.30 > 0.05 default.
  const CompareReport report = compare_runs(baseline, candidate, {});
  EXPECT_FALSE(report.ok());
  EXPECT_NE(report.failures[0].find("min_class_recall"), std::string::npos);
}

TEST(Compare, CandidateAbortFailsUnlessBaselineAborted) {
  RunSummary baseline, candidate;
  candidate.aborted = true;
  EXPECT_FALSE(compare_runs(baseline, candidate, {}).ok());
  baseline.aborted = true;
  EXPECT_TRUE(compare_runs(baseline, candidate, {}).ok());
}

TEST(Compare, TimeFactorGatesOnlyWhenEnabled) {
  RunSummary baseline, candidate;
  baseline.mean_round_wall_ms = 10.0;
  candidate.mean_round_wall_ms = 100.0;
  EXPECT_TRUE(compare_runs(baseline, candidate, {}).ok());  // Off by default.
  CompareThresholds timed;
  timed.time_factor = 2.0;
  EXPECT_FALSE(compare_runs(baseline, candidate, timed).ok());
  candidate.mean_round_wall_ms = 15.0;
  EXPECT_TRUE(compare_runs(baseline, candidate, timed).ok());
}

TEST(Compare, FormatReportCarriesVerdict) {
  RunSummary run;
  run.algorithm = "fedwcm";
  const CompareReport pass = compare_runs(run, run, {});
  EXPECT_NE(format_report(run, run, pass).find("PASS"), std::string::npos);
  RunSummary worse = run;
  worse.final_accuracy = -1.0;
  const CompareReport fail = compare_runs(run, worse, {});
  EXPECT_NE(format_report(run, worse, fail).find("FAIL"), std::string::npos);
}

}  // namespace
}  // namespace fedwcm::analysis
