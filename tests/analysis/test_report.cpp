// Report writers: CSV / JSONL artifact round-trips.
#include "fedwcm/analysis/report.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "fedwcm/obs/json.hpp"

namespace fedwcm::analysis {
namespace {

fl::SimulationResult sample_result() {
  fl::SimulationResult res;
  res.algorithm = "fedwcm";
  res.final_accuracy = 0.72f;
  res.best_accuracy = 0.74f;
  res.tail_mean_accuracy = 0.71f;
  res.per_class_accuracy = {0.9f, 0.5f};
  for (std::size_t r = 0; r < 3; ++r) {
    fl::RoundRecord rec;
    rec.round = r;
    rec.test_accuracy = 0.2f * float(r + 1);
    rec.train_loss = 1.0f - 0.1f * float(r);
    rec.alpha = 0.1f;
    rec.evaluated = true;
    rec.round_wall_ms = 12.5 + double(r);
    rec.bytes_up = 1000 * (r + 1);
    rec.bytes_down = 500 * (r + 1);
    rec.dropped = std::uint32_t(r);
    rec.rejected = 1;
    rec.straggled = 2;
    rec.diagnostics = true;
    rec.momentum_alignment = 0.5f - 0.125f * float(r);
    rec.alignment_min = -0.25f;
    rec.update_norm_mean = 1.5f;
    rec.update_norm_cv = 0.25f;
    rec.drift_norm = 0.75f;
    rec.per_class_accuracy = {0.8f, 0.2f * float(r + 1)};
    rec.population = true;
    rec.norm_p5 = 0.5f;
    rec.norm_p50 = 1.0f + 0.25f * float(r);
    rec.norm_p95 = 2.0f;
    res.history.push_back(rec);
  }
  return res;
}

std::string slurp(const std::string& path) {
  std::ifstream is(path);
  std::stringstream ss;
  ss << is.rdbuf();
  return ss.str();
}

TEST(Report, CsvContainsHeaderAndRows) {
  const std::string path = testing::TempDir() + "/fedwcm_hist.csv";
  write_history_csv(path, sample_result());
  const std::string content = slurp(path);
  EXPECT_NE(content.find("round,test_accuracy"), std::string::npos);
  EXPECT_NE(
      content.find("round_wall_ms,bytes_up,bytes_down,dropped,rejected,straggled"),
      std::string::npos);
  EXPECT_NE(content.find("\n0,0.2"), std::string::npos);
  EXPECT_NE(content.find("\n2,0.6"), std::string::npos);
  EXPECT_NE(content.find("12.5,1000,500,0,1,2"), std::string::npos);
  // Header + 3 data rows.
  EXPECT_EQ(std::count(content.begin(), content.end(), '\n'), 4);
  std::remove(path.c_str());
}

TEST(Report, JsonlContainsRecordsAndSummary) {
  const std::string path = testing::TempDir() + "/fedwcm_hist.jsonl";
  write_history_jsonl(path, sample_result());
  const std::string content = slurp(path);
  EXPECT_NE(content.find("\"algorithm\":\"fedwcm\""), std::string::npos);
  EXPECT_NE(content.find("\"round\":2"), std::string::npos);
  EXPECT_NE(content.find("\"summary\":true"), std::string::npos);
  EXPECT_NE(content.find("\"per_class_accuracy\":[0.9,0.5]"), std::string::npos);
  EXPECT_NE(content.find("\"round_wall_ms\":12.5"), std::string::npos);
  EXPECT_NE(content.find("\"bytes_up\":1000"), std::string::npos);
  EXPECT_NE(content.find("\"bytes_down\":500"), std::string::npos);
  EXPECT_NE(content.find("\"rejected\":1"), std::string::npos);
  EXPECT_NE(content.find("\"straggled\":2"), std::string::npos);
  EXPECT_NE(content.find("\"faults_dropped\":0"), std::string::npos);
  EXPECT_EQ(std::count(content.begin(), content.end(), '\n'), 4);
  std::remove(path.c_str());
}

// The column ordering is a stable contract (docs/OBSERVABILITY.md): existing
// columns never move, new ones are only ever appended.
TEST(Report, CsvHeaderIsStableAndAppendOnly) {
  const std::string header = history_csv_header();
  EXPECT_EQ(header.find("round,test_accuracy,train_loss,alpha,momentum_norm,"
                        "concentration,round_wall_ms,bytes_up,bytes_down,"
                        "dropped,rejected,straggled"),
            0u);
  EXPECT_NE(header.find(",diagnostics,momentum_alignment,alignment_min,"
                        "update_norm_mean,update_norm_cv,drift_norm,"
                        "per_class_accuracy"),
            std::string::npos);
  // The population quantile columns ride at the tail, after everything that
  // predates them.
  const std::string pop_tail = ",population,norm_p5,norm_p50,norm_p95";
  ASSERT_GE(header.size(), pop_tail.size());
  EXPECT_EQ(header.compare(header.size() - pop_tail.size(), pop_tail.size(),
                           pop_tail),
            0)
      << header;

  const std::string path = testing::TempDir() + "/fedwcm_hdr.csv";
  write_history_csv(path, sample_result());
  const std::string content = slurp(path);
  EXPECT_EQ(content.find(header + "\n"), 0u);
  std::remove(path.c_str());
}

TEST(Report, CsvEmitsDiagnosticsAndPerClassCells) {
  const std::string path = testing::TempDir() + "/fedwcm_diag.csv";
  write_history_csv(path, sample_result());
  const std::string content = slurp(path);
  // diagnostics flag, alignment, min, mean-norm, cv, drift, per-class cell.
  EXPECT_NE(content.find("1,0.5,-0.25,1.5,0.25,0.75,0.8;0.2"),
            std::string::npos);
  // The per-class vector is one semicolon-joined cell, not extra columns:
  // every row has the same comma count as the header.
  std::istringstream lines(content);
  std::string line, header;
  std::getline(lines, header);
  const auto commas = std::count(header.begin(), header.end(), ',');
  while (std::getline(lines, line))
    EXPECT_EQ(std::count(line.begin(), line.end(), ','), commas) << line;
  std::remove(path.c_str());
}

// Every JSONL line must parse with the strict obs::json parser and carry the
// record's fields back verbatim (float-exact via default stream precision on
// these representable values).
TEST(Report, JsonlRoundTripsThroughObsJson) {
  const fl::SimulationResult res = sample_result();
  const std::string path = testing::TempDir() + "/fedwcm_rt.jsonl";
  write_history_jsonl(path, res);
  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::string line;
  std::size_t record = 0;
  bool saw_summary = false;
  while (std::getline(in, line)) {
    obs::json::Value value;
    std::string error;
    ASSERT_TRUE(obs::json::parse(line, value, error)) << error << ": " << line;
    ASSERT_TRUE(value.is_object());
    EXPECT_EQ(value.find("algorithm")->as_string(), "fedwcm");
    if (value.find("summary")) {
      saw_summary = true;
      EXPECT_EQ(float(value.find("final_accuracy")->as_number()),
                res.final_accuracy);
      EXPECT_EQ(value.find("per_class_accuracy")->as_array().size(), 2u);
      continue;
    }
    ASSERT_LT(record, res.history.size());
    const fl::RoundRecord& rec = res.history[record];
    EXPECT_EQ(value.find("round")->as_number(), double(rec.round));
    EXPECT_EQ(float(value.find("test_accuracy")->as_number()),
              rec.test_accuracy);
    EXPECT_EQ(value.find("diagnostics")->as_bool(), rec.diagnostics);
    EXPECT_EQ(float(value.find("momentum_alignment")->as_number()),
              rec.momentum_alignment);
    EXPECT_EQ(float(value.find("alignment_min")->as_number()),
              rec.alignment_min);
    EXPECT_EQ(float(value.find("drift_norm")->as_number()), rec.drift_norm);
    ASSERT_NE(value.find("population"), nullptr);
    EXPECT_TRUE(value.find("population")->as_bool());
    EXPECT_EQ(float(value.find("norm_p50")->as_number()), rec.norm_p50);
    EXPECT_EQ(float(value.find("norm_p95")->as_number()), rec.norm_p95);
    const auto& per_class = value.find("per_class_accuracy")->as_array();
    ASSERT_EQ(per_class.size(), rec.per_class_accuracy.size());
    for (std::size_t c = 0; c < per_class.size(); ++c)
      EXPECT_EQ(float(per_class[c].as_number()), rec.per_class_accuracy[c]);
    ++record;
  }
  EXPECT_EQ(record, res.history.size());
  EXPECT_TRUE(saw_summary);
  std::remove(path.c_str());
}

TEST(Report, UnwritablePathThrows) {
  EXPECT_THROW(write_history_csv("/nonexistent/dir/x.csv", sample_result()),
               std::runtime_error);
  EXPECT_THROW(write_history_jsonl("/nonexistent/dir/x.jsonl", sample_result()),
               std::runtime_error);
}

}  // namespace
}  // namespace fedwcm::analysis
