// Report writers: CSV / JSONL artifact round-trips.
#include "fedwcm/analysis/report.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace fedwcm::analysis {
namespace {

fl::SimulationResult sample_result() {
  fl::SimulationResult res;
  res.algorithm = "fedwcm";
  res.final_accuracy = 0.72f;
  res.best_accuracy = 0.74f;
  res.tail_mean_accuracy = 0.71f;
  res.per_class_accuracy = {0.9f, 0.5f};
  for (std::size_t r = 0; r < 3; ++r) {
    fl::RoundRecord rec;
    rec.round = r;
    rec.test_accuracy = 0.2f * float(r + 1);
    rec.train_loss = 1.0f - 0.1f * float(r);
    rec.alpha = 0.1f;
    rec.evaluated = true;
    rec.round_wall_ms = 12.5 + double(r);
    rec.bytes_up = 1000 * (r + 1);
    rec.bytes_down = 500 * (r + 1);
    rec.dropped = std::uint32_t(r);
    rec.rejected = 1;
    rec.straggled = 2;
    res.history.push_back(rec);
  }
  return res;
}

std::string slurp(const std::string& path) {
  std::ifstream is(path);
  std::stringstream ss;
  ss << is.rdbuf();
  return ss.str();
}

TEST(Report, CsvContainsHeaderAndRows) {
  const std::string path = testing::TempDir() + "/fedwcm_hist.csv";
  write_history_csv(path, sample_result());
  const std::string content = slurp(path);
  EXPECT_NE(content.find("round,test_accuracy"), std::string::npos);
  EXPECT_NE(
      content.find("round_wall_ms,bytes_up,bytes_down,dropped,rejected,straggled"),
      std::string::npos);
  EXPECT_NE(content.find("\n0,0.2"), std::string::npos);
  EXPECT_NE(content.find("\n2,0.6"), std::string::npos);
  EXPECT_NE(content.find("12.5,1000,500,0,1,2"), std::string::npos);
  // Header + 3 data rows.
  EXPECT_EQ(std::count(content.begin(), content.end(), '\n'), 4);
  std::remove(path.c_str());
}

TEST(Report, JsonlContainsRecordsAndSummary) {
  const std::string path = testing::TempDir() + "/fedwcm_hist.jsonl";
  write_history_jsonl(path, sample_result());
  const std::string content = slurp(path);
  EXPECT_NE(content.find("\"algorithm\":\"fedwcm\""), std::string::npos);
  EXPECT_NE(content.find("\"round\":2"), std::string::npos);
  EXPECT_NE(content.find("\"summary\":true"), std::string::npos);
  EXPECT_NE(content.find("\"per_class_accuracy\":[0.9,0.5]"), std::string::npos);
  EXPECT_NE(content.find("\"round_wall_ms\":12.5"), std::string::npos);
  EXPECT_NE(content.find("\"bytes_up\":1000"), std::string::npos);
  EXPECT_NE(content.find("\"bytes_down\":500"), std::string::npos);
  EXPECT_NE(content.find("\"rejected\":1"), std::string::npos);
  EXPECT_NE(content.find("\"straggled\":2"), std::string::npos);
  EXPECT_NE(content.find("\"faults_dropped\":0"), std::string::npos);
  EXPECT_EQ(std::count(content.begin(), content.end(), '\n'), 4);
  std::remove(path.c_str());
}

TEST(Report, UnwritablePathThrows) {
  EXPECT_THROW(write_history_csv("/nonexistent/dir/x.csv", sample_result()),
               std::runtime_error);
  EXPECT_THROW(write_history_jsonl("/nonexistent/dir/x.jsonl", sample_result()),
               std::runtime_error);
}

}  // namespace
}  // namespace fedwcm::analysis
