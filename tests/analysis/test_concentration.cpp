// Neuron-concentration metric: bounds, sensitivity to engineered models
// (a class-dedicated-neuron model must score ~1, a class-agnostic one ~1/C).
#include "fedwcm/analysis/concentration.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "fedwcm/nn/activations.hpp"
#include "fedwcm/nn/linear.hpp"
#include "fedwcm/nn/models.hpp"

namespace fedwcm::analysis {
namespace {

// One-hot-feature dataset: feature c fires for class c.
data::Dataset onehot_dataset(std::size_t classes, std::size_t per_class) {
  data::Dataset ds;
  ds.num_classes = classes;
  ds.features = core::Matrix(classes * per_class, classes);
  ds.labels.resize(classes * per_class);
  std::size_t row = 0;
  for (std::size_t c = 0; c < classes; ++c)
    for (std::size_t i = 0; i < per_class; ++i, ++row) {
      ds.features(row, c) = 1.0f;
      ds.labels[row] = c;
    }
  return ds;
}

TEST(Concentration, DedicatedNeuronsScoreNearOne) {
  const std::size_t C = 4;
  nn::Sequential model;
  model.add(std::make_unique<nn::Linear>(C, C, /*bias=*/false));
  model.add(std::make_unique<nn::ReLU>());
  // Identity weights: neuron c fires only for class c.
  core::ParamVector identity(C * C, 0.0f);
  for (std::size_t i = 0; i < C; ++i) identity[i * C + i] = 1.0f;
  model.set_params(identity);

  const auto ds = onehot_dataset(C, 8);
  const ConcentrationReport rep = neuron_concentration(model, ds);
  ASSERT_EQ(rep.per_layer.size(), 1u);
  EXPECT_NEAR(rep.per_layer[0], 1.0f, 1e-5f);
  EXPECT_NEAR(rep.mean, 1.0f, 1e-5f);
}

TEST(Concentration, ClassAgnosticNeuronsScoreNearUniform) {
  const std::size_t C = 4;
  nn::Sequential model;
  model.add(std::make_unique<nn::Linear>(C, 6, /*bias=*/false));
  model.add(std::make_unique<nn::ReLU>());
  // All-ones weights: every neuron responds identically to every class.
  model.set_params(core::ParamVector(C * 6, 1.0f));
  const auto ds = onehot_dataset(C, 8);
  const ConcentrationReport rep = neuron_concentration(model, ds);
  ASSERT_EQ(rep.per_layer.size(), 1u);
  EXPECT_NEAR(rep.per_layer[0], 1.0f / float(C), 1e-5f);
}

TEST(Concentration, BoundsHoldForRandomModels) {
  const std::size_t C = 5;
  nn::Sequential model = nn::make_mlp(C, {12, 8}, C);
  core::Rng rng(17);
  model.init_params(rng);
  const auto ds = onehot_dataset(C, 10);
  const ConcentrationReport rep = neuron_concentration(model, ds);
  EXPECT_EQ(rep.per_layer.size(), 2u);  // two ReLU layers
  for (float v : rep.per_layer) {
    EXPECT_GE(v, 1.0f / float(C) - 1e-5f);
    EXPECT_LE(v, 1.0f + 1e-5f);
  }
  EXPECT_EQ(rep.layer_names.size(), rep.per_layer.size());
}

TEST(Concentration, DeadNeuronsAreSkipped) {
  const std::size_t C = 3;
  nn::Sequential model;
  model.add(std::make_unique<nn::Linear>(C, 4, /*bias=*/false));
  model.add(std::make_unique<nn::ReLU>());
  // Negative weights everywhere: every neuron is dead after ReLU -> report
  // falls back to 1/C rather than dividing by zero.
  model.set_params(core::ParamVector(C * 4, -1.0f));
  const auto ds = onehot_dataset(C, 4);
  const ConcentrationReport rep = neuron_concentration(model, ds);
  EXPECT_NEAR(rep.per_layer[0], 1.0f / float(C), 1e-5f);
}

TEST(Concentration, ProbeCapLimitsWork) {
  const std::size_t C = 3;
  nn::Sequential model = nn::make_mlp(C, {8}, C);
  core::Rng rng(18);
  model.init_params(rng);
  const auto ds = onehot_dataset(C, 100);
  // Capped probe must still produce a valid report.
  const ConcentrationReport rep = neuron_concentration(model, ds, /*max_per_class=*/5);
  EXPECT_FALSE(rep.per_layer.empty());
}

TEST(Concentration, EmptyProbeRejected) {
  nn::Sequential model = nn::make_mlp(3, {4}, 3);
  data::Dataset empty;
  empty.num_classes = 3;
  EXPECT_THROW(neuron_concentration(model, empty), std::invalid_argument);
}

}  // namespace
}  // namespace fedwcm::analysis
