// Curve helpers: series extraction and the rounds-to-threshold metric (§7.3).
#include "fedwcm/analysis/curves.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace fedwcm::analysis {
namespace {

fl::SimulationResult fake_result() {
  fl::SimulationResult res;
  res.algorithm = "fedwcm";
  for (std::size_t r = 0; r < 5; ++r) {
    fl::RoundRecord rec;
    rec.round = r * 10;
    rec.test_accuracy = 0.1f * float(r + 1);
    rec.train_loss = 1.0f / float(r + 1);
    rec.alpha = 0.1f + 0.05f * float(r);
    rec.concentration = 0.2f + 0.01f * float(r);
    res.history.push_back(rec);
  }
  return res;
}

std::string render(const core::SeriesPrinter& s) {
  std::ostringstream ss;
  s.print(ss);
  return ss.str();
}

TEST(Curves, AccuracySeries) {
  core::SeriesPrinter out;
  add_accuracy_series(out, "fedwcm", fake_result());
  const std::string s = render(out);
  EXPECT_NE(s.find("fedwcm,0,0.1"), std::string::npos);
  EXPECT_NE(s.find("fedwcm,40,0.5"), std::string::npos);
}

TEST(Curves, ConcentrationAndLossAndAlphaSeries) {
  core::SeriesPrinter out;
  add_concentration_series(out, "conc", fake_result());
  add_loss_series(out, "loss", fake_result());
  add_alpha_series(out, "alpha", fake_result());
  const std::string s = render(out);
  EXPECT_NE(s.find("conc,0,0.2"), std::string::npos);
  EXPECT_NE(s.find("loss,0,1"), std::string::npos);
  EXPECT_NE(s.find("alpha,0,0.1"), std::string::npos);
}

TEST(Curves, RoundsToAccuracy) {
  const auto res = fake_result();
  EXPECT_EQ(rounds_to_accuracy(res, 0.05f), 0u);
  EXPECT_EQ(rounds_to_accuracy(res, 0.25f), 20u);
  EXPECT_EQ(rounds_to_accuracy(res, 0.5f), 40u);
  EXPECT_EQ(rounds_to_accuracy(res, 0.9f), SIZE_MAX);
}

}  // namespace
}  // namespace fedwcm::analysis
