// Zero-allocation training hot path at the FL layer: once a Worker is warm,
// additional local epochs (i.e. additional minibatch steps) must not perform
// any heap allocation — the per-call fixed costs (sampler, x/v/delta vectors)
// are identical between a 1-epoch and a 5-epoch run, so the allocation-count
// difference isolates the per-minibatch cost, which must be exactly zero.
#include <gtest/gtest.h>

#include "../support/alloc_counter.hpp"
#include "fedwcm/core/tensor.hpp"
#include "fedwcm/fl/local.hpp"
#include "fl_test_util.hpp"

namespace fedwcm::fl {
namespace {

using testutil::make_world;

struct ModeGuard {
  core::KernelMode saved = core::kernel_mode();
  ~ModeGuard() { core::set_kernel_mode(saved); }
};

std::uint64_t allocations_for_run(const FlContext& ctx, Worker& worker,
                                  const ParamVector& start,
                                  const nn::Loss& loss) {
  const std::uint64_t before = fedwcm::testing::allocation_count();
  const LocalResult res = run_local_sgd(
      ctx, worker, 0, start, /*round=*/0, 0.05f, loss,
      [](const ParamVector& g, const ParamVector&, ParamVector& v) { v = g; });
  EXPECT_GT(res.num_steps, 0u);
  return fedwcm::testing::allocation_count() - before;
}

TEST(ZeroAlloc, ExtraEpochsPerformZeroAllocations) {
  ModeGuard guard;
  core::set_kernel_mode(core::KernelMode::kBlocked);

  auto w_short = make_world();
  w_short.config.local_epochs = 1;
  auto w_long = make_world();
  w_long.config.local_epochs = 5;
  Simulation sim_short = w_short.make_simulation();
  Simulation sim_long = w_long.make_simulation();
  const FlContext& ctx_short = sim_short.context();
  const FlContext& ctx_long = sim_long.context();
  ASSERT_GT(ctx_long.config->local_epochs, ctx_short.config->local_epochs);

  Worker worker(ctx_short.model_factory);
  core::Rng rng(1);
  worker.model.init_params(rng);
  const ParamVector start = worker.model.get_params();
  nn::CrossEntropyLoss loss;

  // Warm-up: grows the worker's workspace, gradient vector, batch buffers
  // and the thread-local GEMM packing arenas to their high-water marks.
  allocations_for_run(ctx_long, worker, start, loss);
  allocations_for_run(ctx_short, worker, start, loss);

  const std::uint64_t short_allocs =
      allocations_for_run(ctx_short, worker, start, loss);
  const std::uint64_t long_allocs =
      allocations_for_run(ctx_long, worker, start, loss);
  EXPECT_EQ(long_allocs, short_allocs)
      << "the extra epochs' minibatch steps must not allocate";
}

TEST(ZeroAlloc, NaiveReferencePathAllocatesPerStep) {
  ModeGuard guard;
  core::set_kernel_mode(core::KernelMode::kNaive);

  auto w_short = make_world();
  w_short.config.local_epochs = 1;
  auto w_long = make_world();
  w_long.config.local_epochs = 5;
  Simulation sim_short = w_short.make_simulation();
  Simulation sim_long = w_long.make_simulation();

  Worker worker(sim_short.context().model_factory);
  core::Rng rng(2);
  worker.model.init_params(rng);
  const ParamVector start = worker.model.get_params();
  nn::CrossEntropyLoss loss;

  allocations_for_run(sim_long.context(), worker, start, loss);
  allocations_for_run(sim_short.context(), worker, start, loss);
  const std::uint64_t short_allocs =
      allocations_for_run(sim_short.context(), worker, start, loss);
  const std::uint64_t long_allocs =
      allocations_for_run(sim_long.context(), worker, start, loss);
  // Sanity check on the measurement itself: the seed-faithful naive mode
  // allocates fresh tensors per step, so more epochs must mean more
  // allocations. If this ever fails, the counter is not counting.
  EXPECT_GT(long_allocs, short_allocs);
}

}  // namespace
}  // namespace fedwcm::fl
