// Simulation engine: seeded determinism (including across thread counts),
// client sampling contracts, eval cadence, probes, and config validation.
#include <gtest/gtest.h>

#include "fedwcm/fl/registry.hpp"
#include "fl_test_util.hpp"

namespace fedwcm::fl {
namespace {

using testutil::make_world;

TEST(Simulation, DeterministicForSeed) {
  auto w = make_world();
  Simulation sim1 = w.make_simulation();
  Simulation sim2 = w.make_simulation();
  auto a1 = make_algorithm("fedwcm");
  auto a2 = make_algorithm("fedwcm");
  const SimulationResult r1 = sim1.run(*a1);
  const SimulationResult r2 = sim2.run(*a2);
  ASSERT_EQ(r1.final_params.size(), r2.final_params.size());
  for (std::size_t i = 0; i < r1.final_params.size(); ++i)
    ASSERT_FLOAT_EQ(r1.final_params[i], r2.final_params[i]) << i;
  EXPECT_FLOAT_EQ(r1.final_accuracy, r2.final_accuracy);
}

TEST(Simulation, ThreadCountDoesNotChangeResult) {
  auto w1 = make_world();
  auto w4 = make_world();
  w1.config.threads = 1;
  w4.config.threads = 4;
  Simulation s1 = w1.make_simulation();
  Simulation s4 = w4.make_simulation();
  auto a1 = make_algorithm("fedcm");
  auto a4 = make_algorithm("fedcm");
  const SimulationResult r1 = s1.run(*a1);
  const SimulationResult r4 = s4.run(*a4);
  for (std::size_t i = 0; i < r1.final_params.size(); ++i)
    ASSERT_FLOAT_EQ(r1.final_params[i], r4.final_params[i]) << i;
}

TEST(Simulation, DifferentSeedsDiffer) {
  auto wa = make_world();
  auto wb = make_world();
  wb.config.seed = 777;
  Simulation sa = wa.make_simulation();
  Simulation sb = wb.make_simulation();
  auto a = make_algorithm("fedavg");
  auto b = make_algorithm("fedavg");
  EXPECT_NE(sa.run(*a).final_params, sb.run(*b).final_params);
}

TEST(Simulation, SampledPerRoundContract) {
  FlConfig cfg;
  cfg.num_clients = 100;
  cfg.participation = 0.1;
  EXPECT_EQ(cfg.sampled_per_round(), 10u);
  cfg.participation = 0.0;
  EXPECT_EQ(cfg.sampled_per_round(), 1u);  // never zero
  cfg.participation = 2.0;
  EXPECT_EQ(cfg.sampled_per_round(), 100u);  // capped
}

TEST(Simulation, EvalCadenceRespected) {
  auto w = make_world();
  w.config.rounds = 9;
  w.config.eval_every = 3;
  Simulation sim = w.make_simulation();
  auto alg = make_algorithm("fedavg");
  const SimulationResult res = sim.run(*alg);
  // Rounds 0, 3, 6 and the forced last round 8.
  ASSERT_EQ(res.history.size(), 4u);
  EXPECT_EQ(res.history[0].round, 0u);
  EXPECT_EQ(res.history[1].round, 3u);
  EXPECT_EQ(res.history.back().round, 8u);
  EXPECT_FALSE(res.per_class_accuracy.empty());
}

TEST(Simulation, ProbeIsInvokedAndRecorded) {
  auto w = make_world();
  w.config.rounds = 4;
  w.config.eval_every = 1;
  Simulation sim = w.make_simulation();
  int calls = 0;
  sim.set_probe([&calls](nn::Sequential&, const data::Dataset&) {
    ++calls;
    return 0.75f;
  });
  auto alg = make_algorithm("fedavg");
  const SimulationResult res = sim.run(*alg);
  EXPECT_EQ(calls, int(res.history.size()));
  for (const auto& rec : res.history) EXPECT_FLOAT_EQ(rec.concentration, 0.75f);
}

TEST(Simulation, PartitionMismatchRejected) {
  auto w = make_world(1.0, 0.1, /*clients=*/8);
  w.config.num_clients = 9;  // partition has 8
  EXPECT_THROW(w.make_simulation(), std::invalid_argument);
}

TEST(Simulation, TailMeanAndBestTracked) {
  auto w = make_world(1.0);
  w.config.rounds = 10;
  Simulation sim = w.make_simulation();
  auto alg = make_algorithm("fedavg");
  const SimulationResult res = sim.run(*alg);
  EXPECT_GE(res.best_accuracy, res.final_accuracy - 1e-6f);
  EXPECT_GT(res.tail_mean_accuracy, 0.0f);
  float best = 0.0f;
  for (const auto& rec : res.history) best = std::max(best, rec.test_accuracy);
  EXPECT_FLOAT_EQ(res.best_accuracy, best);
}

TEST(Simulation, AllAlgorithmsRunOneRoundWithoutError) {
  for (const std::string& name : algorithm_names()) {
    auto w = make_world();
    w.config.rounds = 1;
    Simulation sim = w.make_simulation();
    auto alg = make_algorithm(name);
    EXPECT_NO_THROW(sim.run(*alg)) << name;
  }
}

}  // namespace
}  // namespace fedwcm::fl
