// Simulation engine: seeded determinism (including across thread counts),
// client sampling contracts, eval cadence, probes, observers, observability
// integration, and config validation.
#include <gtest/gtest.h>

#include "fedwcm/fl/registry.hpp"
#include "fedwcm/obs/trace.hpp"
#include "fl_test_util.hpp"

namespace fedwcm::fl {
namespace {

using testutil::make_world;

TEST(Simulation, DeterministicForSeed) {
  auto w = make_world();
  Simulation sim1 = w.make_simulation();
  Simulation sim2 = w.make_simulation();
  auto a1 = make_algorithm("fedwcm");
  auto a2 = make_algorithm("fedwcm");
  const SimulationResult r1 = sim1.run(*a1);
  const SimulationResult r2 = sim2.run(*a2);
  ASSERT_EQ(r1.final_params.size(), r2.final_params.size());
  for (std::size_t i = 0; i < r1.final_params.size(); ++i)
    ASSERT_FLOAT_EQ(r1.final_params[i], r2.final_params[i]) << i;
  EXPECT_FLOAT_EQ(r1.final_accuracy, r2.final_accuracy);
}

TEST(Simulation, ThreadCountDoesNotChangeResult) {
  auto w1 = make_world();
  auto w4 = make_world();
  w1.config.threads = 1;
  w4.config.threads = 4;
  Simulation s1 = w1.make_simulation();
  Simulation s4 = w4.make_simulation();
  auto a1 = make_algorithm("fedcm");
  auto a4 = make_algorithm("fedcm");
  const SimulationResult r1 = s1.run(*a1);
  const SimulationResult r4 = s4.run(*a4);
  for (std::size_t i = 0; i < r1.final_params.size(); ++i)
    ASSERT_FLOAT_EQ(r1.final_params[i], r4.final_params[i]) << i;
}

TEST(Simulation, DifferentSeedsDiffer) {
  auto wa = make_world();
  auto wb = make_world();
  wb.config.seed = 777;
  Simulation sa = wa.make_simulation();
  Simulation sb = wb.make_simulation();
  auto a = make_algorithm("fedavg");
  auto b = make_algorithm("fedavg");
  EXPECT_NE(sa.run(*a).final_params, sb.run(*b).final_params);
}

TEST(Simulation, SampledPerRoundContract) {
  FlConfig cfg;
  cfg.num_clients = 100;
  cfg.participation = 0.1;
  EXPECT_EQ(cfg.sampled_per_round(), 10u);
  cfg.participation = 0.0;
  EXPECT_EQ(cfg.sampled_per_round(), 1u);  // never zero
  cfg.participation = 2.0;
  EXPECT_EQ(cfg.sampled_per_round(), 100u);  // capped
}

TEST(Simulation, EvalCadenceRespected) {
  auto w = make_world();
  w.config.rounds = 9;
  w.config.eval_every = 3;
  Simulation sim = w.make_simulation();
  auto alg = make_algorithm("fedavg");
  const SimulationResult res = sim.run(*alg);
  // Rounds 0, 3, 6 and the forced last round 8.
  ASSERT_EQ(res.history.size(), 4u);
  EXPECT_EQ(res.history[0].round, 0u);
  EXPECT_EQ(res.history[1].round, 3u);
  EXPECT_EQ(res.history.back().round, 8u);
  EXPECT_FALSE(res.per_class_accuracy.empty());
}

TEST(Simulation, ProbeIsInvokedAndRecorded) {
  auto w = make_world();
  w.config.rounds = 4;
  w.config.eval_every = 1;
  Simulation sim = w.make_simulation();
  int calls = 0;
  sim.set_probe([&calls](nn::Sequential&, const data::Dataset&) {
    ++calls;
    return 0.75f;
  });
  auto alg = make_algorithm("fedavg");
  const SimulationResult res = sim.run(*alg);
  EXPECT_EQ(calls, int(res.history.size()));
  for (const auto& rec : res.history) EXPECT_FLOAT_EQ(rec.concentration, 0.75f);
}

TEST(Simulation, PartitionMismatchRejected) {
  auto w = make_world(1.0, 0.1, /*clients=*/8);
  w.config.num_clients = 9;  // partition has 8
  EXPECT_THROW(w.make_simulation(), std::invalid_argument);
}

TEST(Simulation, TailMeanAndBestTracked) {
  auto w = make_world(1.0);
  w.config.rounds = 10;
  Simulation sim = w.make_simulation();
  auto alg = make_algorithm("fedavg");
  const SimulationResult res = sim.run(*alg);
  EXPECT_GE(res.best_accuracy, res.final_accuracy - 1e-6f);
  EXPECT_GT(res.tail_mean_accuracy, 0.0f);
  float best = 0.0f;
  for (const auto& rec : res.history) best = std::max(best, rec.test_accuracy);
  EXPECT_FLOAT_EQ(res.best_accuracy, best);
}

TEST(Simulation, AllAlgorithmsRunOneRoundWithoutError) {
  for (const std::string& name : algorithm_names()) {
    auto w = make_world();
    w.config.rounds = 1;
    Simulation sim = w.make_simulation();
    auto alg = make_algorithm(name);
    EXPECT_NO_THROW(sim.run(*alg)) << name;
  }
}

TEST(Simulation, RecordsTimingAndCommVolume) {
  auto w = make_world();
  w.config.rounds = 4;
  w.config.eval_every = 1;
  Simulation sim = w.make_simulation();
  auto alg = make_algorithm("fedavg");
  const SimulationResult res = sim.run(*alg);
  const std::size_t param_count = sim.context().param_count;
  for (const auto& rec : res.history) {
    EXPECT_TRUE(rec.evaluated);
    EXPECT_GT(rec.round_wall_ms, 0.0);
    // Downlink: FedAvg broadcasts only the global params to each sampled
    // client (broadcast_floats == param_count), one fp32-framed wire message
    // each; uplink at least one framed delta of the same size per client.
    const std::uint64_t sampled = w.config.sampled_per_round();
    const std::uint64_t message =
        core::wire_bytes(core::Codec::kFp32, param_count);
    EXPECT_EQ(rec.bytes_down, sampled * message);
    EXPECT_GE(rec.bytes_up, sampled * message);
  }
}

TEST(Simulation, MomentumBroadcastDoublesDownlink) {
  // FedCM-family servers broadcast (x_r, Delta_r) — §2's 2x downlink cost —
  // which the accounting must reflect via Algorithm::broadcast_floats.
  for (const char* name : {"fedcm", "fedwcm", "fedwcmx"}) {
    auto w = make_world();
    w.config.rounds = 2;
    w.config.eval_every = 1;
    Simulation sim = w.make_simulation();
    auto alg = make_algorithm(name);
    const SimulationResult res = sim.run(*alg);
    const std::size_t param_count = sim.context().param_count;
    EXPECT_EQ(alg->broadcast_floats(), 2 * param_count) << name;
    const std::uint64_t sampled = w.config.sampled_per_round();
    for (const auto& rec : res.history)
      EXPECT_EQ(rec.bytes_down,
                sampled * core::wire_bytes(core::Codec::kFp32, 2 * param_count))
          << name;
  }
}

TEST(Simulation, TracedRunEmitsOneRoundSpanPerRound) {
  obs::Tracer::global().clear();
  obs::Tracer::global().set_enabled(true);
  auto w = make_world();
  w.config.rounds = 3;
  Simulation sim = w.make_simulation();
  auto alg = make_algorithm("fedwcm");
  sim.run(*alg);
  obs::Tracer::global().set_enabled(false);
  std::size_t round_spans = 0, client_spans = 0, aggregate_spans = 0;
  for (const auto& ev : obs::Tracer::global().events()) {
    if (ev.name == "round") ++round_spans;
    if (ev.name == "client.local_train") ++client_spans;
    if (ev.name == "aggregate") ++aggregate_spans;
  }
  obs::Tracer::global().clear();
  EXPECT_EQ(round_spans, w.config.rounds);
  EXPECT_EQ(aggregate_spans, w.config.rounds);
  EXPECT_EQ(client_spans, w.config.rounds * w.config.sampled_per_round());
}

TEST(Simulation, ObserverSeesEveryRoundAndRunBoundaries) {
  struct CountingObserver final : RoundObserver {
    int run_begins = 0, round_begins = 0, evals = 0, round_ends = 0, run_ends = 0;
    std::size_t evaluated_rounds = 0;
    void on_run_begin(const FlContext&, const std::string&) override { ++run_begins; }
    void on_round_begin(std::size_t, std::span<const std::size_t> sampled) override {
      EXPECT_FALSE(sampled.empty());
      ++round_begins;
    }
    void on_evaluate(nn::Sequential&, const FlContext&, RoundRecord& rec) override {
      rec.train_metric = 9.0f;  // Observers may enrich the record.
      ++evals;
    }
    void on_round_end(const RoundRecord& rec) override {
      if (rec.evaluated) ++evaluated_rounds;
      EXPECT_GT(rec.round_wall_ms, 0.0);
      ++round_ends;
    }
    void on_run_end(const SimulationResult& result) override {
      EXPECT_FALSE(result.history.empty());
      ++run_ends;
    }
  };
  auto w = make_world();
  w.config.rounds = 6;
  w.config.eval_every = 2;
  Simulation sim = w.make_simulation();
  auto observer = std::make_shared<CountingObserver>();
  sim.add_observer(observer);
  auto alg = make_algorithm("fedavg");
  const SimulationResult res = sim.run(*alg);
  EXPECT_EQ(observer->run_begins, 1);
  EXPECT_EQ(observer->run_ends, 1);
  EXPECT_EQ(observer->round_begins, 6);
  EXPECT_EQ(observer->round_ends, 6);
  EXPECT_EQ(observer->evals, int(res.history.size()));
  EXPECT_EQ(observer->evaluated_rounds, res.history.size());
  for (const auto& rec : res.history) EXPECT_FLOAT_EQ(rec.train_metric, 9.0f);
}

TEST(Simulation, ProbeShimStillLandsInRecordAfterMove) {
  // The probe pair is a shim over the observer path, and moved-from
  // Simulations must keep a self-consistent context (the CLI runner
  // rebuilds-and-assigns for loss rewiring).
  auto w = make_world();
  w.config.rounds = 4;
  Simulation sim = w.make_simulation();
  {
    Simulation rebuilt = w.make_simulation();
    rebuilt.set_probe([](nn::Sequential&, const data::Dataset&) { return 0.5f; });
    sim = std::move(rebuilt);
  }
  auto alg = make_algorithm("fedavg");
  const SimulationResult res = sim.run(*alg);
  ASSERT_FALSE(res.history.empty());
  for (const auto& rec : res.history) EXPECT_FLOAT_EQ(rec.concentration, 0.5f);
}

TEST(Simulation, PopulationTelemetryFillsRoundQuantiles) {
  auto w = make_world();
  w.config.population_telemetry = true;
  Simulation sim = w.make_simulation();
  auto alg = make_algorithm("fedwcm");
  const SimulationResult res = sim.run(*alg);
  ASSERT_FALSE(res.history.empty());
  for (const auto& rec : res.history) {
    // Every round accepted at least one upload in this fault-free world.
    ASSERT_TRUE(rec.population) << rec.round;
    EXPECT_GT(rec.norm_p5, 0.0f) << rec.round;
    EXPECT_LE(rec.norm_p5, rec.norm_p50) << rec.round;
    EXPECT_LE(rec.norm_p50, rec.norm_p95) << rec.round;
  }
}

TEST(Simulation, PopulationOffLeavesQuantilesUnset) {
  auto w = make_world();
  Simulation sim = w.make_simulation();
  auto alg = make_algorithm("fedavg");
  const SimulationResult res = sim.run(*alg);
  ASSERT_FALSE(res.history.empty());
  for (const auto& rec : res.history) {
    EXPECT_FALSE(rec.population);
    EXPECT_EQ(rec.norm_p50, 0.0f);
  }
}

// Population telemetry is strictly read-only: turning it on cannot change a
// single bit of the training trajectory (same contract as diagnostics).
TEST(Simulation, TrajectoryBitwiseIdenticalWithAndWithoutPopulation) {
  for (const char* name : {"fedavg", "fedwcm"}) {
    auto w = make_world();
    Simulation plain_sim = w.make_simulation();
    auto plain_alg = make_algorithm(name);
    const SimulationResult plain = plain_sim.run(*plain_alg);

    auto wp = make_world();
    wp.config.population_telemetry = true;
    Simulation pop_sim = wp.make_simulation();
    auto pop_alg = make_algorithm(name);
    const SimulationResult pop = pop_sim.run(*pop_alg);

    ASSERT_EQ(plain.final_params.size(), pop.final_params.size()) << name;
    for (std::size_t i = 0; i < plain.final_params.size(); ++i)
      ASSERT_EQ(plain.final_params[i], pop.final_params[i])
          << name << " param " << i;
    ASSERT_EQ(plain.history.size(), pop.history.size()) << name;
    for (std::size_t i = 0; i < plain.history.size(); ++i) {
      const RoundRecord& a = plain.history[i];
      const RoundRecord& b = pop.history[i];
      EXPECT_EQ(a.test_accuracy, b.test_accuracy) << name << " round " << i;
      EXPECT_EQ(a.train_loss, b.train_loss) << name << " round " << i;
      EXPECT_EQ(a.momentum_norm, b.momentum_norm) << name << " round " << i;
      // The only permitted difference is the annotation itself.
      EXPECT_FALSE(a.population) << name;
      EXPECT_TRUE(b.population) << name;
    }
  }
}

}  // namespace
}  // namespace fedwcm::fl
