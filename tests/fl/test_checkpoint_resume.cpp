// Checkpoint/resume: per-algorithm state round-trips, bitwise-identical
// resume after a simulated crash, and rejection of mismatched / truncated /
// corrupted checkpoints.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <iterator>
#include <memory>
#include <sstream>

#include "fedwcm/core/checkpoint.hpp"
#include "fedwcm/fl/checkpoint.hpp"
#include "fedwcm/fl/registry.hpp"
#include "fl_test_util.hpp"

namespace fedwcm::fl {
namespace {

using testutil::make_world;

// Every registered algorithm must serialize its cross-round state such that
// save -> fresh instance -> initialize -> load -> save reproduces the exact
// byte stream (initialize-then-load is the documented restore order).
TEST(CheckpointState, RoundTripForEveryRegisteredAlgorithm) {
  for (const std::string& name : algorithm_names()) {
    auto w = make_world();
    w.config.rounds = 3;
    Simulation sim = w.make_simulation();
    auto alg = make_algorithm(name);
    sim.run(*alg);

    std::stringstream first;
    {
      core::BinaryWriter bw(first);
      alg->save_state(bw);
    }

    auto fresh = make_algorithm(name);
    fresh->initialize(sim.context());
    {
      core::BinaryReader br(first);
      fresh->load_state(br);
      EXPECT_TRUE(br.at_end()) << name << ": load_state left trailing bytes";
    }

    std::stringstream second;
    {
      core::BinaryWriter bw(second);
      fresh->save_state(bw);
    }
    EXPECT_EQ(first.str(), second.str()) << name;
  }
}

struct CrashAtRound final : RoundObserver {
  std::size_t crash_round;
  explicit CrashAtRound(std::size_t r) : crash_round(r) {}
  void on_round_end(const RoundRecord& rec) override {
    if (rec.round == crash_round) throw std::runtime_error("injected crash");
  }
};

void expect_same_run(const SimulationResult& resumed,
                     const SimulationResult& expected, const std::string& tag) {
  // Everything except wall-clock must match bitwise.
  EXPECT_EQ(resumed.final_params, expected.final_params) << tag;
  EXPECT_EQ(resumed.final_accuracy, expected.final_accuracy) << tag;
  EXPECT_EQ(resumed.best_accuracy, expected.best_accuracy) << tag;
  EXPECT_EQ(resumed.tail_mean_accuracy, expected.tail_mean_accuracy) << tag;
  EXPECT_EQ(resumed.per_class_accuracy, expected.per_class_accuracy) << tag;
  EXPECT_EQ(resumed.faults_dropped, expected.faults_dropped) << tag;
  EXPECT_EQ(resumed.faults_rejected, expected.faults_rejected) << tag;
  EXPECT_EQ(resumed.faults_straggled, expected.faults_straggled) << tag;
  ASSERT_EQ(resumed.history.size(), expected.history.size()) << tag;
  for (std::size_t i = 0; i < resumed.history.size(); ++i) {
    const RoundRecord& a = resumed.history[i];
    const RoundRecord& b = expected.history[i];
    EXPECT_EQ(a.round, b.round) << tag;
    EXPECT_EQ(a.test_accuracy, b.test_accuracy) << tag << " round " << b.round;
    EXPECT_EQ(a.train_loss, b.train_loss) << tag << " round " << b.round;
    EXPECT_EQ(a.alpha, b.alpha) << tag << " round " << b.round;
    EXPECT_EQ(a.momentum_norm, b.momentum_norm) << tag << " round " << b.round;
    EXPECT_EQ(a.bytes_up, b.bytes_up) << tag << " round " << b.round;
    EXPECT_EQ(a.bytes_down, b.bytes_down) << tag << " round " << b.round;
    EXPECT_EQ(a.dropped, b.dropped) << tag;
    EXPECT_EQ(a.rejected, b.rejected) << tag;
    EXPECT_EQ(a.straggled, b.straggled) << tag;
    EXPECT_EQ(a.diagnostics, b.diagnostics) << tag;
    EXPECT_EQ(a.momentum_alignment, b.momentum_alignment) << tag;
    EXPECT_EQ(a.alignment_min, b.alignment_min) << tag;
    EXPECT_EQ(a.update_norm_mean, b.update_norm_mean) << tag;
    EXPECT_EQ(a.update_norm_cv, b.update_norm_cv) << tag;
    EXPECT_EQ(a.drift_norm, b.drift_norm) << tag;
    EXPECT_EQ(a.per_class_accuracy, b.per_class_accuracy) << tag;
    EXPECT_EQ(a.population, b.population) << tag;
    EXPECT_EQ(a.norm_p5, b.norm_p5) << tag << " round " << b.round;
    EXPECT_EQ(a.norm_p50, b.norm_p50) << tag << " round " << b.round;
    EXPECT_EQ(a.norm_p95, b.norm_p95) << tag << " round " << b.round;
  }
}

SimulationResult run_crash_then_resume(const testutil::TestWorld& w,
                                       const std::string& alg_name,
                                       const std::string& path) {
  std::remove(path.c_str());
  {
    // "Crash" two rounds past the last checkpoint write.
    Simulation sim = w.make_simulation();
    sim.set_checkpointing({path, 5, false});
    sim.add_observer(std::make_shared<CrashAtRound>(6));
    auto alg = make_algorithm(alg_name);
    EXPECT_THROW(sim.run(*alg), std::runtime_error);
  }
  EXPECT_TRUE(core::checkpoint_exists(path));

  Simulation sim = w.make_simulation();
  sim.set_checkpointing({path, 5, true});
  auto alg = make_algorithm(alg_name);
  const SimulationResult resumed = sim.run(*alg);
  std::remove(path.c_str());
  return resumed;
}

// The headline guarantee: a run interrupted mid-way and resumed from its
// checkpoint is bitwise identical to the uninterrupted run, because every
// stochastic choice derives from (seed, round, client).
TEST(CheckpointResume, ResumeEqualsUninterrupted) {
  for (const char* name : {"fedavg", "fedcm", "fedwcm"}) {
    auto w = make_world();
    Simulation base = w.make_simulation();
    auto base_alg = make_algorithm(name);
    const SimulationResult expected = base.run(*base_alg);

    const std::string path =
        testing::TempDir() + "/fedwcm_resume_" + name + ".ckpt";
    const SimulationResult resumed = run_crash_then_resume(w, name, path);
    expect_same_run(resumed, expected, name);
  }
}

TEST(CheckpointResume, ResumeEqualsUninterruptedWithPopulationTelemetry) {
  // Population quantiles are serialized with each history record, so a
  // resumed run replays them bitwise instead of losing the pre-crash rounds.
  auto w = make_world();
  w.config.population_telemetry = true;
  Simulation base = w.make_simulation();
  auto base_alg = make_algorithm("fedwcm");
  const SimulationResult expected = base.run(*base_alg);
  ASSERT_FALSE(expected.history.empty());
  EXPECT_TRUE(expected.history.front().population);

  const std::string path = testing::TempDir() + "/fedwcm_resume_pop.ckpt";
  const SimulationResult resumed = run_crash_then_resume(w, "fedwcm", path);
  expect_same_run(resumed, expected, "fedwcm+population");
}

TEST(CheckpointResume, ResumeEqualsUninterruptedUnderFaults) {
  auto w = make_world();
  w.config.faults.drop_prob = 0.25;
  w.config.faults.straggler_prob = 0.25;
  Simulation base = w.make_simulation();
  auto base_alg = make_algorithm("fedcm");
  const SimulationResult expected = base.run(*base_alg);

  const std::string path = testing::TempDir() + "/fedwcm_resume_faults.ckpt";
  const SimulationResult resumed = run_crash_then_resume(w, "fedcm", path);
  expect_same_run(resumed, expected, "fedcm+faults");
}

// Leaves a committed checkpoint (next_round == 6) at `path`.
std::string make_checkpoint(const testutil::TestWorld& w,
                            const std::string& alg_name,
                            const std::string& file_name) {
  const std::string path = testing::TempDir() + "/" + file_name;
  std::remove(path.c_str());
  Simulation sim = w.make_simulation();
  sim.set_checkpointing({path, 3, false});
  auto alg = make_algorithm(alg_name);
  sim.run(*alg);
  return path;
}

TEST(CheckpointResume, CheckpointWrittenAtCadenceAndLoadable) {
  auto w = make_world();  // rounds=8: writes at next_round 3 and 6
  const std::string path = make_checkpoint(w, "fedwcm", "fedwcm_cadence.ckpt");
  ASSERT_TRUE(core::checkpoint_exists(path));

  Simulation sim = w.make_simulation();
  auto alg = make_algorithm("fedwcm");
  alg->initialize(sim.context());
  const ResumeState state =
      load_checkpoint(path, w.config, sim.context().param_count, *alg);
  EXPECT_EQ(state.next_round, 6u);
  EXPECT_EQ(state.global.size(), sim.context().param_count);
  for (const RoundRecord& rec : state.history) EXPECT_LT(rec.round, 6u);
  std::remove(path.c_str());
}

TEST(CheckpointResume, MismatchedSeedRejected) {
  auto w = make_world();
  const std::string path = make_checkpoint(w, "fedavg", "fedwcm_seed.ckpt");

  auto other = make_world();
  other.config.seed = 777;  // different trajectory — refuse to resume
  Simulation sim = other.make_simulation();
  sim.set_checkpointing({path, 3, true});
  auto alg = make_algorithm("fedavg");
  EXPECT_THROW(sim.run(*alg), std::runtime_error);
  std::remove(path.c_str());
}

TEST(CheckpointResume, MismatchedAlgorithmRejected) {
  auto w = make_world();
  const std::string path = make_checkpoint(w, "fedcm", "fedwcm_alg.ckpt");
  Simulation sim = w.make_simulation();
  sim.set_checkpointing({path, 3, true});
  auto alg = make_algorithm("fedavg");
  EXPECT_THROW(sim.run(*alg), std::runtime_error);
  std::remove(path.c_str());
}

TEST(CheckpointResume, TruncatedCheckpointRejected) {
  auto w = make_world();
  const std::string path = make_checkpoint(w, "fedcm", "fedwcm_trunc.ckpt");
  std::string bytes;
  {
    std::ifstream is(path, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(is), {});
  }
  {
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os.write(bytes.data(), std::streamsize(bytes.size() / 2));
  }
  Simulation sim = w.make_simulation();
  sim.set_checkpointing({path, 3, true});
  auto alg = make_algorithm("fedcm");
  EXPECT_THROW(sim.run(*alg), std::runtime_error);
  std::remove(path.c_str());
}

TEST(CheckpointResume, TrailingGarbageRejected) {
  auto w = make_world();
  const std::string path = make_checkpoint(w, "fedavg", "fedwcm_trail.ckpt");
  {
    std::ofstream os(path, std::ios::binary | std::ios::app);
    os.write("junk", 4);
  }
  Simulation sim = w.make_simulation();
  sim.set_checkpointing({path, 3, true});
  auto alg = make_algorithm("fedavg");
  EXPECT_THROW(sim.run(*alg), std::runtime_error);
  std::remove(path.c_str());
}

TEST(CheckpointResume, MissingFileWithResumeStartsFresh) {
  // resume=true with no file present is a cold start, not an error (first
  // launch of a checkpointed job).
  auto w = make_world();
  w.config.rounds = 2;
  const std::string path = testing::TempDir() + "/fedwcm_cold.ckpt";
  std::remove(path.c_str());
  Simulation sim = w.make_simulation();
  sim.set_checkpointing({path, 1, true});
  auto alg = make_algorithm("fedavg");
  EXPECT_NO_THROW(sim.run(*alg));
  EXPECT_TRUE(core::checkpoint_exists(path));
  std::remove(path.c_str());
}

TEST(CheckpointResume, FingerprintCoversTrajectoryShapingFields) {
  auto w = make_world();
  const std::string base =
      config_fingerprint(w.config, 100, "fedwcm");
  auto w2 = make_world();
  w2.config.faults.drop_prob = 0.5;
  EXPECT_NE(config_fingerprint(w2.config, 100, "fedwcm"), base);
  EXPECT_NE(config_fingerprint(w.config, 101, "fedwcm"), base);
  EXPECT_NE(config_fingerprint(w.config, 100, "fedcm"), base);
  // Thread count is a machine-shape knob, not a trajectory knob: a run may
  // resume on a different machine.
  auto w3 = make_world();
  w3.config.threads = 16;
  EXPECT_EQ(config_fingerprint(w3.config, 100, "fedwcm"), base);
}

}  // namespace
}  // namespace fedwcm::fl
