#pragma once
// Shared scaffolding for federated-learning tests: a small deterministic
// dataset + partition + simulation, cheap enough to run dozens of times.
#include "fedwcm/data/longtail.hpp"
#include "fedwcm/data/partition.hpp"
#include "fedwcm/data/synthetic.hpp"
#include "fedwcm/fl/simulation.hpp"

namespace fedwcm::fl::testutil {

struct TestWorld {
  data::TrainTest data;
  std::vector<std::size_t> subset;
  data::Partition partition;
  FlConfig config;

  Simulation make_simulation(nn::ModelFactory factory, LossFactory loss) const {
    return Simulation(config, data.train, data.test, partition, std::move(factory),
                      std::move(loss));
  }
  Simulation make_simulation() const {
    return make_simulation(default_factory(), cross_entropy_loss_factory());
  }
  nn::ModelFactory default_factory() const {
    return nn::mlp_factory(data.train.dim(), {16}, data.train.num_classes);
  }
};

/// Small world: 6 classes, 8 clients, a few hundred samples.
inline TestWorld make_world(double imbalance = 0.1, double beta = 0.1,
                            std::size_t clients = 8, std::uint64_t seed = 42,
                            bool fedgrab_partition = false) {
  TestWorld w;
  data::SyntheticSpec spec;
  spec.name = "test_world";
  spec.num_classes = 6;
  spec.input_dim = 12;
  spec.subclusters = 2;
  spec.train_per_class = 60;
  spec.test_per_class = 20;
  spec.class_separation = 4.0f;
  spec.noise = 0.8f;
  spec.warp = 0.3f;
  w.data = data::generate(spec, seed);
  w.subset = data::longtail_subsample(w.data.train, imbalance, seed);
  w.partition =
      fedgrab_partition
          ? data::partition_fedgrab(w.data.train, w.subset, clients, beta, seed)
          : data::partition_equal_quantity(w.data.train, w.subset, clients, beta,
                                           seed);
  w.config.num_clients = clients;
  w.config.participation = 0.5;
  w.config.rounds = 8;
  w.config.local_epochs = 2;
  w.config.batch_size = 16;
  w.config.seed = seed;
  w.config.eval_every = 2;
  w.config.threads = 2;
  return w;
}

}  // namespace fedwcm::fl::testutil
