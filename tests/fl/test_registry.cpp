// Registry: every advertised algorithm constructs and reports its own name;
// the method-spec lists match the paper's table columns.
#include "fedwcm/fl/registry.hpp"

#include <gtest/gtest.h>

namespace fedwcm::fl {
namespace {

TEST(Registry, AllNamesConstructAndSelfIdentify) {
  for (const std::string& name : algorithm_names()) {
    const auto alg = make_algorithm(name);
    ASSERT_NE(alg, nullptr) << name;
    EXPECT_EQ(alg->name(), name);
  }
}

TEST(Registry, ExpectedAlgorithmsPresent) {
  const auto names = algorithm_names();
  for (const char* expected :
       {"fedavg", "fedprox", "fedavgm", "scaffold", "feddyn", "fedcm", "fedwcm",
        "fedwcmx", "fedsam", "mofedsam", "fedlesam", "fedsmoo", "fedspeed",
        "fedgrab", "balancefl", "creff", "fedadam", "fedyogi"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << expected;
  }
  EXPECT_EQ(names.size(), 18u);
}

TEST(Registry, UnknownNameThrows) {
  EXPECT_THROW(make_algorithm("fedmystery"), std::invalid_argument);
}

TEST(Registry, Table1MethodsMatchPaperColumns) {
  const auto methods = table1_methods();
  ASSERT_EQ(methods.size(), 7u);
  EXPECT_EQ(methods[0].label, "FedAvg");
  EXPECT_EQ(methods[1].algorithm, "balancefl");
  EXPECT_EQ(methods[3].loss, "focal");
  EXPECT_EQ(methods[4].loss, "balance");
  EXPECT_TRUE(methods[5].balanced_sampler);
  EXPECT_EQ(methods[6].algorithm, "fedwcm");
  // Every referenced algorithm must exist in the registry.
  for (const auto& m : methods) EXPECT_NO_THROW(make_algorithm(m.algorithm));
}

TEST(Registry, CoreTrioIsFedAvgFedCmFedWcm) {
  const auto trio = core_trio();
  ASSERT_EQ(trio.size(), 3u);
  EXPECT_EQ(trio[0].algorithm, "fedavg");
  EXPECT_EQ(trio[1].algorithm, "fedcm");
  EXPECT_EQ(trio[2].algorithm, "fedwcm");
}

}  // namespace
}  // namespace fedwcm::fl
