// FedAvg / FedProx / FedAvgM semantics: aggregation weighting, proximal pull,
// server momentum accumulation.
#include <gtest/gtest.h>

#include "fedwcm/fl/algorithms/fedavg.hpp"
#include "fl_test_util.hpp"

namespace fedwcm::fl {
namespace {

using testutil::make_world;

LocalResult fake_result(std::size_t client, std::size_t samples, float fill,
                        std::size_t dim = 4) {
  LocalResult r;
  r.client = client;
  r.num_samples = samples;
  r.num_steps = 5;
  r.delta.assign(dim, fill);
  return r;
}

TEST(AggregationHelpers, SampleWeightedDelta) {
  std::vector<LocalResult> results{fake_result(0, 30, 1.0f), fake_result(1, 10, 5.0f)};
  const ParamVector agg = sample_weighted_delta(results);
  // (30*1 + 10*5) / 40 = 2.
  for (float v : agg) EXPECT_FLOAT_EQ(v, 2.0f);
}

TEST(AggregationHelpers, UniformDelta) {
  std::vector<LocalResult> results{fake_result(0, 30, 1.0f), fake_result(1, 10, 5.0f)};
  const ParamVector agg = uniform_delta(results);
  for (float v : agg) EXPECT_FLOAT_EQ(v, 3.0f);
}

TEST(AggregationHelpers, MeanSteps) {
  std::vector<LocalResult> results{fake_result(0, 1, 0.0f), fake_result(1, 1, 0.0f)};
  results[0].num_steps = 10;
  results[1].num_steps = 20;
  EXPECT_DOUBLE_EQ(mean_steps(results), 15.0);
}

TEST(FedAvg, AggregateAppliesGlobalLr) {
  auto w = make_world();
  w.config.global_lr = 0.5f;
  Simulation sim = w.make_simulation();
  FedAvg alg;
  alg.initialize(sim.context());
  ParamVector global(sim.context().param_count, 1.0f);
  std::vector<LocalResult> results{
      fake_result(0, 10, 2.0f, sim.context().param_count)};
  alg.aggregate(results, 0, global);
  // global -= 0.5 * 2.0 -> 0.
  for (float v : global) EXPECT_FLOAT_EQ(v, 0.0f);
}

TEST(FedProx, ProximalTermPullsTowardGlobal) {
  // With a strong (but lr-stable) mu the proximal pull damps the excursion;
  // with mu = 0 it reduces to FedAvg. Note lr*mu must stay < 2 for stability.
  auto w = make_world();
  w.config.local_epochs = 1;
  Simulation sim = w.make_simulation();
  const FlContext& ctx = sim.context();

  nn::Sequential init = ctx.model_factory();
  core::Rng rng(4);
  init.init_params(rng);
  const ParamVector start = init.get_params();

  Worker worker(ctx.model_factory);
  FedProx strong(5.0f);
  strong.initialize(ctx);
  const LocalResult pulled = strong.local_update(0, start, 0, worker);

  FedProx weak(0.0f);
  weak.initialize(ctx);
  const LocalResult free_run = weak.local_update(0, start, 0, worker);

  EXPECT_LT(core::pv::l2_norm(pulled.delta), core::pv::l2_norm(free_run.delta));
}

TEST(FedProx, ZeroMuMatchesFedAvgExactly) {
  auto w = make_world();
  w.config.local_epochs = 1;
  Simulation sim = w.make_simulation();
  const FlContext& ctx = sim.context();
  nn::Sequential init = ctx.model_factory();
  core::Rng rng(5);
  init.init_params(rng);
  const ParamVector start = init.get_params();

  Worker worker(ctx.model_factory);
  FedAvg avg;
  avg.initialize(ctx);
  FedProx prox(0.0f);
  prox.initialize(ctx);
  const LocalResult a = avg.local_update(1, start, 0, worker);
  const LocalResult b = prox.local_update(1, start, 0, worker);
  ASSERT_EQ(a.delta.size(), b.delta.size());
  for (std::size_t i = 0; i < a.delta.size(); ++i)
    ASSERT_NEAR(a.delta[i], b.delta[i], 1e-6f);
}

TEST(FedAvgM, MomentumAccumulatesAcrossRounds) {
  auto w = make_world();
  w.config.global_lr = 1.0f;
  Simulation sim = w.make_simulation();
  FedAvgM alg(0.5f);
  alg.initialize(sim.context());
  const std::size_t dim = sim.context().param_count;
  ParamVector global(dim, 0.0f);
  std::vector<LocalResult> results{fake_result(0, 10, 1.0f, dim)};
  alg.aggregate(results, 0, global);
  // m = 1, step 1 -> global = -1.
  EXPECT_FLOAT_EQ(global[0], -1.0f);
  alg.aggregate(results, 1, global);
  // m = 0.5*1 + 1 = 1.5 -> global = -2.5.
  EXPECT_FLOAT_EQ(global[0], -2.5f);
  EXPECT_GT(alg.momentum_norm(), 0.0f);
}

TEST(FedAvg, FullRunLearnsAboveChance) {
  auto w = make_world(/*imbalance=*/1.0);
  w.config.rounds = 12;
  Simulation sim = w.make_simulation();
  FedAvg alg;
  const SimulationResult res = sim.run(alg);
  EXPECT_GT(res.final_accuracy, 1.5f / 6.0f);  // well above 1/6 chance
  EXPECT_EQ(res.algorithm, "fedavg");
}

}  // namespace
}  // namespace fedwcm::fl
