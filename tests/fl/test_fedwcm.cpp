// FedWCM: Eq. 3 scores, Eq. 4 softmax weights (simplex + minority-favouring),
// Eq. 5 adaptive alpha (range + monotonicity), temperature behaviour, the
// FedWCM-X quantity extensions, and ablation toggles.
#include <gtest/gtest.h>

#include <cmath>

#include <numeric>

#include "fedwcm/fl/algorithms/fedwcm.hpp"
#include "fl_test_util.hpp"

namespace fedwcm::fl {
namespace {

using testutil::make_world;

FedWCM initialized_fedwcm(const FlContext& ctx, FedWcmOptions opt = {}) {
  FedWCM alg(std::move(opt));
  alg.initialize(ctx);
  return alg;
}

TEST(FedWcmScores, BalancedDataGivesNearZeroScores) {
  auto w = make_world(/*imbalance=*/1.0);
  Simulation sim = w.make_simulation();
  FedWCM alg = initialized_fedwcm(sim.context());
  for (double s : alg.scores()) EXPECT_LT(s, 0.05);
}

TEST(FedWcmScores, TailHoldersScoreHigher) {
  auto w = make_world(/*imbalance=*/0.05);
  Simulation sim = w.make_simulation();
  const FlContext& ctx = sim.context();
  FedWCM alg = initialized_fedwcm(ctx);

  // Find the client with the largest share of tail-half classes and the one
  // with the largest share of head class 0; their scores must be ordered.
  const std::size_t C = ctx.num_classes();
  double best_tail_share = -1, best_head_share = -1;
  std::size_t tail_client = 0, head_client = 0;
  for (std::size_t k = 0; k < ctx.num_clients(); ++k) {
    const auto& counts = ctx.client_class_counts[k];
    const double n = double(ctx.client_size(k));
    if (n == 0) continue;
    double tail = 0;
    for (std::size_t c = C / 2; c < C; ++c) tail += double(counts[c]);
    if (tail / n > best_tail_share) {
      best_tail_share = tail / n;
      tail_client = k;
    }
    if (double(counts[0]) / n > best_head_share) {
      best_head_share = double(counts[0]) / n;
      head_client = k;
    }
  }
  EXPECT_GT(alg.scores()[tail_client], alg.scores()[head_client]);
}

TEST(FedWcmTemperature, DecreasesWithImbalance) {
  auto balanced = make_world(1.0);
  auto longtail = make_world(0.05);
  Simulation sb = balanced.make_simulation();
  Simulation sl = longtail.make_simulation();
  FedWCM ab = initialized_fedwcm(sb.context());
  FedWCM al = initialized_fedwcm(sl.context());
  EXPECT_GT(ab.temperature(), al.temperature());
}

LocalResult stub_result(std::size_t client, std::size_t samples, std::size_t dim) {
  LocalResult r;
  r.client = client;
  r.num_samples = samples;
  r.num_steps = 4;
  r.delta.assign(dim, 0.1f);
  return r;
}

TEST(FedWcmWeights, FormSimplexAndFavourHighScores) {
  auto w = make_world(0.05);
  Simulation sim = w.make_simulation();
  const FlContext& ctx = sim.context();
  FedWCM alg = initialized_fedwcm(ctx);

  std::vector<LocalResult> results;
  for (std::size_t k = 0; k < ctx.num_clients(); ++k)
    results.push_back(stub_result(k, ctx.client_size(k), ctx.param_count));
  const auto weights = alg.aggregation_weights(results);
  double sum = 0.0;
  for (float v : weights) {
    EXPECT_GE(v, 0.0f);
    sum += v;
  }
  EXPECT_NEAR(sum, 1.0, 1e-5);
  // Weight ordering must follow score ordering.
  for (std::size_t i = 0; i < results.size(); ++i)
    for (std::size_t j = 0; j < results.size(); ++j)
      if (alg.scores()[i] > alg.scores()[j] + 1e-9)
        EXPECT_GE(weights[i], weights[j] - 1e-6f);
}

TEST(FedWcmWeights, UniformWhenAblationDisablesScores) {
  auto w = make_world(0.05);
  Simulation sim = w.make_simulation();
  FedWcmOptions opt;
  opt.use_score_weights = false;
  FedWCM alg = initialized_fedwcm(sim.context(), opt);
  std::vector<LocalResult> results;
  for (std::size_t k = 0; k < 4; ++k)
    results.push_back(stub_result(k, 10, sim.context().param_count));
  for (float v : alg.aggregation_weights(results)) EXPECT_NEAR(v, 0.25f, 1e-6f);
}

TEST(FedWcmAlpha, StaysInPaperRange) {
  // Across imbalance settings and many rounds, alpha in [0.1, 1) (§6).
  for (double imb : {1.0, 0.1, 0.01}) {
    auto w = make_world(imb);
    w.config.rounds = 6;
    Simulation sim = w.make_simulation();
    FedWCM alg;
    const SimulationResult res = sim.run(alg);
    for (const auto& rec : res.history) {
      EXPECT_GE(rec.alpha, 0.1f) << "IF " << imb;
      EXPECT_LT(rec.alpha, 1.0f) << "IF " << imb;
    }
  }
}

TEST(FedWcmAlpha, IncreasesWithSampledMinorityRepresentation) {
  auto w = make_world(0.05);
  Simulation sim = w.make_simulation();
  const FlContext& ctx = sim.context();
  const std::size_t dim = ctx.param_count;

  // Round sampling only high-score clients vs only low-score clients.
  FedWCM alg = initialized_fedwcm(ctx);
  std::vector<std::size_t> order(ctx.num_clients());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return alg.scores()[a] > alg.scores()[b];
  });

  FedWCM high = initialized_fedwcm(ctx);
  std::vector<LocalResult> top{stub_result(order.front(), 10, dim)};
  ParamVector g1(dim, 0.0f);
  high.aggregate(top, 0, g1);

  FedWCM low = initialized_fedwcm(ctx);
  std::vector<LocalResult> bottom{stub_result(order.back(), 10, dim)};
  ParamVector g2(dim, 0.0f);
  low.aggregate(bottom, 0, g2);

  EXPECT_GE(high.current_alpha(), low.current_alpha());
}

TEST(FedWcmAlpha, FixedWhenAblationDisablesAdaptivity) {
  auto w = make_world(0.05);
  w.config.rounds = 5;
  Simulation sim = w.make_simulation();
  FedWcmOptions opt;
  opt.adaptive_alpha = false;
  opt.alpha0 = 0.1f;
  FedWCM alg(opt);
  const SimulationResult res = sim.run(alg);
  for (const auto& rec : res.history) EXPECT_FLOAT_EQ(rec.alpha, 0.1f);
}

TEST(FedWcmScoreMode, AbsoluteModeChangesScores) {
  auto w = make_world(0.05);
  Simulation sim = w.make_simulation();
  FedWcmOptions abs_opt;
  abs_opt.score_mode = ScoreMode::kAbsolute;
  FedWCM scarcity = initialized_fedwcm(sim.context());
  FedWCM absolute = initialized_fedwcm(sim.context(), abs_opt);
  // Under a long tail the two readings must disagree for head-heavy clients.
  bool any_diff = false;
  for (std::size_t k = 0; k < scarcity.scores().size(); ++k)
    any_diff |= std::abs(scarcity.scores()[k] - absolute.scores()[k]) > 1e-9;
  EXPECT_TRUE(any_diff);
}

TEST(FedWcmTarget, CustomTargetDistributionIsHonoured) {
  auto w = make_world(0.05);
  Simulation sim = w.make_simulation();
  const std::size_t C = sim.context().num_classes();
  FedWcmOptions opt;
  // Target = the actual global distribution -> zero deviation everywhere.
  opt.target_distribution = data::normalize_counts(
      sim.context().global_class_counts);
  FedWCM alg = initialized_fedwcm(sim.context(), opt);
  for (double s : alg.scores()) EXPECT_NEAR(s, 0.0, 1e-9);
  // Wrong-sized target must throw.
  FedWcmOptions bad;
  bad.target_distribution.assign(C + 1, 1.0 / double(C + 1));
  FedWCM broken(bad);
  EXPECT_THROW(broken.initialize(sim.context()), std::invalid_argument);
}

TEST(FedWcmOverride, GlobalCountsOverrideDrivesScores) {
  auto w = make_world(0.05);
  Simulation sim = w.make_simulation();
  const FlContext& ctx = sim.context();
  // Override equal to the true counts -> identical scores/temperature.
  FedWcmOptions same;
  same.global_counts_override = ctx.global_class_counts;
  FedWCM a = initialized_fedwcm(ctx);
  FedWCM b = initialized_fedwcm(ctx, same);
  EXPECT_EQ(a.scores(), b.scores());
  EXPECT_DOUBLE_EQ(a.temperature(), b.temperature());
  // A balanced override on long-tailed data flattens the deviations.
  FedWcmOptions flat;
  const std::size_t total = std::accumulate(ctx.global_class_counts.begin(),
                                            ctx.global_class_counts.end(),
                                            std::size_t(0));
  flat.global_counts_override.assign(ctx.num_classes(),
                                     total / ctx.num_classes());
  FedWCM c = initialized_fedwcm(ctx, flat);
  for (double s : c.scores()) EXPECT_LT(s, 0.05);
  // Wrong size rejected.
  FedWcmOptions bad;
  bad.global_counts_override.assign(ctx.num_classes() + 1, 1);
  FedWCM broken(bad);
  EXPECT_THROW(broken.initialize(ctx), std::invalid_argument);
}

TEST(FedWcmX, QuantityWeightingMultipliesSampleCounts) {
  auto w = make_world(0.1, 0.1, 8, 42, /*fedgrab_partition=*/true);
  Simulation sim = w.make_simulation();
  const FlContext& ctx = sim.context();
  FedWcmX alg;
  alg.initialize(ctx);
  // Two synthetic clients with identical scores but different sizes: the
  // larger must receive the larger weight.
  std::vector<LocalResult> results{stub_result(0, 5, ctx.param_count),
                                   stub_result(0, 50, ctx.param_count)};
  const auto weights = alg.aggregation_weights(results);
  EXPECT_GT(weights[1], weights[0] * 5.0f);
  EXPECT_NEAR(weights[0] + weights[1], 1.0f, 1e-5f);
}

TEST(FedWcmX, LearningRateNormalizationRunsAndConverges) {
  auto w = make_world(0.1, 0.1, 8, 42, /*fedgrab_partition=*/true);
  w.config.rounds = 10;
  Simulation sim = w.make_simulation();
  FedWcmX alg;
  const SimulationResult res = sim.run(alg);
  EXPECT_EQ(res.algorithm, "fedwcmx");
  EXPECT_GT(res.final_accuracy, 1.2f / 6.0f);
}

}  // namespace
}  // namespace fedwcm::fl
