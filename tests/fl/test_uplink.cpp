// Lossy-uplink transport (fl/uplink.hpp): fp32 strict passthrough, the
// EF-SGD residual construction and its boundedness, checkpoint round trips,
// and the simulation-level acceptance gates — `--uplink=fp32` bitwise
// identity, error feedback recovering accuracy vs no-feedback int8, int8
// checkpoint/resume, lazy + streaming compatibility, and the >= 3.5x
// bytes_up shrink.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>
#include <sstream>

#include "fedwcm/core/rng.hpp"
#include "fedwcm/fl/checkpoint.hpp"
#include "fedwcm/fl/registry.hpp"
#include "fedwcm/fl/uplink.hpp"
#include "fl_test_util.hpp"

namespace fedwcm::fl {
namespace {

using testutil::make_world;

ParamVector random_delta(std::size_t n, core::Rng& rng, float span = 0.2f) {
  ParamVector v(n);
  for (float& x : v) x = float(rng.normal()) * span;
  return v;
}

// ---------------------------------------------------------------------------
// Transport unit tests.
// ---------------------------------------------------------------------------

TEST(Uplink, Fp32IsBitwisePassthrough) {
  Uplink up;
  up.configure(core::Codec::kFp32, /*error_feedback=*/true);
  EXPECT_FALSE(up.lossy());
  core::Rng rng(3);
  ParamVector delta = random_delta(100, rng);
  delta[7] = -0.0f;  // signed zero must survive untouched
  const ParamVector before = delta;
  const std::uint64_t bytes = up.transport(5, delta);
  EXPECT_EQ(bytes, core::wire_bytes(core::Codec::kFp32, 100));
  ASSERT_EQ(delta.size(), before.size());
  for (std::size_t i = 0; i < delta.size(); ++i) {
    std::uint32_t a, b;
    std::memcpy(&a, &delta[i], 4);
    std::memcpy(&b, &before[i], 4);
    ASSERT_EQ(a, b) << i;
  }
  EXPECT_EQ(up.residual_clients(), 0u);  // fp32 keeps no residual state
}

TEST(Uplink, Int8TransportReturnsCompressedBytesAndQuantizedDelta) {
  Uplink up;
  up.configure(core::Codec::kInt8, true);
  EXPECT_TRUE(up.lossy());
  core::Rng rng(5);
  ParamVector delta = random_delta(1000, rng);
  const ParamVector original = delta;
  const std::uint64_t bytes = up.transport(0, delta);
  EXPECT_EQ(bytes, core::wire_bytes(core::Codec::kInt8, 1000));
  EXPECT_GE(double(core::wire_bytes(core::Codec::kFp32, 1000)) / double(bytes),
            3.5);
  // The server-visible delta is the dequantized message; first transport has
  // no residual, so |delta - original| <= scale/2.
  float max_abs = 0.0f;
  for (float v : original) max_abs = std::max(max_abs, std::fabs(v));
  const float scale = max_abs / 127.0f;
  for (std::size_t i = 0; i < delta.size(); ++i)
    EXPECT_LE(std::fabs(delta[i] - original[i]), scale * 0.5f + 1e-9f) << i;
}

TEST(Uplink, ErrorFeedbackStoresExactQuantizationResidual) {
  Uplink up;
  up.configure(core::Codec::kInt8, true);
  core::Rng rng(7);
  ParamVector delta = random_delta(64, rng);
  const ParamVector v = delta;  // first round: no residual, v == delta
  up.transport(3, delta);
  const ParamVector* r = up.residual(3);
  ASSERT_NE(r, nullptr);
  ASSERT_EQ(r->size(), v.size());
  for (std::size_t i = 0; i < v.size(); ++i)
    EXPECT_FLOAT_EQ((*r)[i], v[i] - delta[i]) << i;
  EXPECT_EQ(up.residual_clients(), 1u);
  EXPECT_EQ(up.residual(99), nullptr);
}

TEST(Uplink, ErrorFeedbackResidualStaysBounded) {
  // EF-SGD's stability property: the carried residual never exceeds one
  // round's quantization error (scale/2 per element) no matter how many
  // rounds accumulate, because each round re-quantizes v = delta + r.
  Uplink up;
  up.configure(core::Codec::kInt8, true);
  core::Rng rng(11);
  for (int round = 0; round < 200; ++round) {
    ParamVector delta = random_delta(128, rng, 0.1f);
    up.transport(0, delta);
    const ParamVector* r = up.residual(0);
    ASSERT_NE(r, nullptr);
    float r_inf = 0.0f;
    for (float x : *r) r_inf = std::max(r_inf, std::fabs(x));
    // ||v||_inf <= ||delta||_inf + ||r_prev||_inf; scale = ||v||_inf / 127,
    // residual <= scale/2 — far below the delta magnitude itself. Use a loose
    // absolute ceiling: it would blow up within a few rounds if EF leaked.
    EXPECT_LE(r_inf, 0.05f) << "round " << round;
  }
}

TEST(Uplink, ErrorFeedbackCompensatesOverTime) {
  // A constant true delta uploaded through int8+EF: the running mean of the
  // server-visible (dequantized) deltas must converge to the true delta —
  // the whole point of carrying the residual forward.
  Uplink up;
  up.configure(core::Codec::kInt8, true);
  ParamVector truth(32);
  core::Rng rng(13);
  for (float& x : truth) x = float(rng.normal()) * 0.1f;
  ParamVector mean(truth.size(), 0.0f);
  const int rounds = 400;
  for (int round = 0; round < rounds; ++round) {
    ParamVector delta = truth;
    up.transport(0, delta);
    for (std::size_t i = 0; i < mean.size(); ++i) mean[i] += delta[i];
  }
  float max_abs = 0.0f;
  for (float v : truth) max_abs = std::max(max_abs, std::fabs(v));
  const float one_round_err = max_abs / 127.0f;  // scale of a single round
  for (std::size_t i = 0; i < mean.size(); ++i) {
    // Time-averaged error shrinks ~1/rounds; require well under one round's
    // quantization step (a no-EF uplink would plateau at ~scale/2).
    EXPECT_LE(std::fabs(mean[i] / rounds - truth[i]), one_round_err * 0.1f)
        << i;
  }
}

TEST(Uplink, NoFeedbackModeKeepsNoState) {
  Uplink up;
  up.configure(core::Codec::kInt8, /*error_feedback=*/false);
  core::Rng rng(17);
  ParamVector delta = random_delta(64, rng);
  up.transport(0, delta);
  up.transport(1, delta);
  EXPECT_EQ(up.residual_clients(), 0u);
}

TEST(Uplink, PoisonedUploadLeavesResidualUntouched) {
  Uplink up;
  up.configure(core::Codec::kInt8, true);
  core::Rng rng(19);
  ParamVector good = random_delta(32, rng);
  up.transport(0, good);
  const ParamVector saved = *up.residual(0);

  ParamVector bad = random_delta(32, rng);
  bad[4] = std::numeric_limits<float>::quiet_NaN();
  up.transport(0, bad);
  // The transported message is poisoned (all_finite fails, server rejects)...
  EXPECT_FALSE(core::pv::all_finite(bad));
  // ...and the honest residual survives for the client's next upload.
  ASSERT_NE(up.residual(0), nullptr);
  EXPECT_EQ(*up.residual(0), saved);
}

TEST(Uplink, ConfigureClearsResiduals) {
  Uplink up;
  up.configure(core::Codec::kInt8, true);
  core::Rng rng(23);
  ParamVector delta = random_delta(16, rng);
  up.transport(0, delta);
  EXPECT_EQ(up.residual_clients(), 1u);
  up.configure(core::Codec::kInt8, true);
  EXPECT_EQ(up.residual_clients(), 0u);
}

// ---------------------------------------------------------------------------
// Uplink checkpoint state.
// ---------------------------------------------------------------------------

TEST(UplinkState, SaveLoadRoundTripsResiduals) {
  Uplink up;
  up.configure(core::Codec::kInt8, true);
  core::Rng rng(29);
  for (const std::size_t client : {7u, 2u, 19u}) {
    ParamVector delta = random_delta(24, rng);
    up.transport(client, delta);
  }
  std::stringstream first;
  {
    core::BinaryWriter w(first);
    up.save_state(w);
  }
  Uplink restored;
  restored.configure(core::Codec::kInt8, true);
  {
    core::BinaryReader r(first);
    restored.load_state(r);
    EXPECT_TRUE(r.at_end());
  }
  EXPECT_EQ(restored.residual_clients(), up.residual_clients());
  for (const std::size_t client : {7u, 2u, 19u}) {
    ASSERT_NE(restored.residual(client), nullptr) << client;
    EXPECT_EQ(*restored.residual(client), *up.residual(client)) << client;
  }
  // Deterministic bytes: saving the restored state reproduces the stream.
  std::stringstream second;
  {
    core::BinaryWriter w(second);
    restored.save_state(w);
  }
  EXPECT_EQ(first.str(), second.str());
}

TEST(UplinkState, LoadRejectsCodecMismatch) {
  Uplink int8_up;
  int8_up.configure(core::Codec::kInt8, true);
  std::stringstream bytes;
  {
    core::BinaryWriter w(bytes);
    int8_up.save_state(w);
  }
  Uplink fp16_up;
  fp16_up.configure(core::Codec::kFp16, true);
  core::BinaryReader r(bytes);
  EXPECT_THROW(fp16_up.load_state(r), std::runtime_error);
}

TEST(UplinkState, LoadRejectsErrorFeedbackMismatch) {
  Uplink with_ef;
  with_ef.configure(core::Codec::kInt8, true);
  std::stringstream bytes;
  {
    core::BinaryWriter w(bytes);
    with_ef.save_state(w);
  }
  Uplink without_ef;
  without_ef.configure(core::Codec::kInt8, false);
  core::BinaryReader r(bytes);
  EXPECT_THROW(without_ef.load_state(r), std::runtime_error);
}

TEST(UplinkState, LoadRejectsOversizedResidualCount) {
  std::stringstream bytes;
  {
    core::BinaryWriter w(bytes);
    w.write_u32(std::uint32_t(core::Codec::kInt8));
    w.write_u32(1);
    w.write_u64(std::uint64_t(1) << 50);  // absurd client count
  }
  Uplink up;
  up.configure(core::Codec::kInt8, true);
  core::BinaryReader r(bytes);
  EXPECT_THROW(up.load_state(r), std::runtime_error);
}

// ---------------------------------------------------------------------------
// Simulation integration.
// ---------------------------------------------------------------------------

void expect_same_trajectory(const SimulationResult& a, const SimulationResult& b,
                            const std::string& tag) {
  ASSERT_EQ(a.final_params.size(), b.final_params.size()) << tag;
  for (std::size_t i = 0; i < a.final_params.size(); ++i) {
    std::uint32_t ba, bb;
    std::memcpy(&ba, &a.final_params[i], 4);
    std::memcpy(&bb, &b.final_params[i], 4);
    ASSERT_EQ(ba, bb) << tag << " param " << i;
  }
  EXPECT_EQ(a.final_accuracy, b.final_accuracy) << tag;
  ASSERT_EQ(a.history.size(), b.history.size()) << tag;
  for (std::size_t i = 0; i < a.history.size(); ++i) {
    EXPECT_EQ(a.history[i].test_accuracy, b.history[i].test_accuracy) << tag;
    EXPECT_EQ(a.history[i].train_loss, b.history[i].train_loss) << tag;
    EXPECT_EQ(a.history[i].momentum_norm, b.history[i].momentum_norm) << tag;
  }
}

// The acceptance gate: an explicit --uplink=fp32 run (either EF setting) is
// bitwise identical to the defaults — the transport layer cannot perturb an
// uncompressed trajectory.
TEST(UplinkSimulation, Fp32UplinkIsBitwiseIdenticalToDefault) {
  for (const char* name : {"fedavg", "fedwcm"}) {
    auto base = make_world();
    Simulation base_sim = base.make_simulation();
    auto base_alg = make_algorithm(name);
    const SimulationResult expected = base_sim.run(*base_alg);

    for (const bool ef : {true, false}) {
      auto w = make_world();
      w.config.uplink = core::Codec::kFp32;
      w.config.error_feedback = ef;
      Simulation sim = w.make_simulation();
      auto alg = make_algorithm(name);
      const SimulationResult got = sim.run(*alg);
      expect_same_trajectory(got, expected,
                             std::string(name) + (ef ? "+ef" : "-ef"));
    }
  }
}

float trajectory_distance(const SimulationResult& a, const SimulationResult& b) {
  EXPECT_EQ(a.final_params.size(), b.final_params.size());
  double sq = 0.0;
  for (std::size_t i = 0; i < a.final_params.size(); ++i) {
    const double d = double(a.final_params[i]) - double(b.final_params[i]);
    sq += d * d;
  }
  return float(std::sqrt(sq));
}

SimulationResult run_uplink(core::Codec codec, bool ef, const char* alg_name,
                            std::size_t rounds = 8) {
  auto w = make_world();
  w.config.rounds = rounds;
  w.config.uplink = codec;
  w.config.error_feedback = ef;
  Simulation sim = w.make_simulation();
  auto alg = make_algorithm(alg_name);
  return sim.run(*alg);
}

// Error feedback demonstrably recovers accuracy: the int8+EF trajectory ends
// closer to the fp32 reference than the int8 no-feedback one.
TEST(UplinkSimulation, ErrorFeedbackRecoversInt8Trajectory) {
  const SimulationResult fp32 = run_uplink(core::Codec::kFp32, true, "fedwcm");
  const SimulationResult with_ef = run_uplink(core::Codec::kInt8, true, "fedwcm");
  const SimulationResult no_ef = run_uplink(core::Codec::kInt8, false, "fedwcm");
  const float d_ef = trajectory_distance(with_ef, fp32);
  const float d_no = trajectory_distance(no_ef, fp32);
  EXPECT_LT(d_ef, d_no) << "EF drift " << d_ef << " vs no-EF drift " << d_no;
  // And the compressed run still trains: accuracy in the fp32 ballpark.
  EXPECT_GE(with_ef.final_accuracy, fp32.final_accuracy - 0.1f);
}

TEST(UplinkSimulation, QuantizedRunsAreDeterministic) {
  for (const core::Codec codec : {core::Codec::kFp16, core::Codec::kInt8}) {
    const SimulationResult a = run_uplink(codec, true, "fedcm", 4);
    const SimulationResult b = run_uplink(codec, true, "fedcm", 4);
    expect_same_trajectory(a, b, core::to_string(codec));
  }
}

// bytes_up acceptance: the int8 run's reported uplink volume shrinks by at
// least 3.5x vs the fp32 run on the identical configuration.
TEST(UplinkSimulation, Int8ShrinksBytesUpAtLeast3point5x) {
  const SimulationResult fp32 = run_uplink(core::Codec::kFp32, true, "fedavg", 4);
  const SimulationResult int8 = run_uplink(core::Codec::kInt8, true, "fedavg", 4);
  std::uint64_t up_fp32 = 0, up_int8 = 0;
  for (const auto& rec : fp32.history) up_fp32 += rec.bytes_up;
  for (const auto& rec : int8.history) up_int8 += rec.bytes_up;
  ASSERT_GT(up_int8, 0u);
  EXPECT_GE(double(up_fp32) / double(up_int8), 3.5)
      << up_fp32 << " vs " << up_int8;
  // Downlink stays fp32 in both runs.
  ASSERT_EQ(fp32.history.size(), int8.history.size());
  for (std::size_t i = 0; i < fp32.history.size(); ++i)
    EXPECT_EQ(fp32.history[i].bytes_down, int8.history[i].bytes_down);
}

TEST(UplinkSimulation, StreamAggregationWorksWithInt8) {
  // The dequantize-and-fold path: streaming aggregation accepts quantized
  // uploads, stays deterministic, and still trains.
  auto make = [] {
    auto w = make_world();
    w.config.rounds = 4;
    w.config.stream_aggregation = true;
    w.config.uplink = core::Codec::kInt8;
    return w;
  };
  auto w1 = make();
  auto w2 = make();
  Simulation s1 = w1.make_simulation();
  Simulation s2 = w2.make_simulation();
  auto a1 = make_algorithm("fedwcm");
  auto a2 = make_algorithm("fedwcm");
  const SimulationResult r1 = s1.run(*a1);
  const SimulationResult r2 = s2.run(*a2);
  expect_same_trajectory(r1, r2, "stream+int8");
  EXPECT_TRUE(core::pv::all_finite(r1.final_params));
}

TEST(UplinkSimulation, ThreadCountDoesNotChangeQuantizedResult) {
  // EF state mutates on the driver thread in cohort order, so the quantized
  // trajectory must be invariant to the worker-pool size.
  auto w1 = make_world();
  auto w4 = make_world();
  w1.config.threads = 1;
  w4.config.threads = 4;
  for (auto* w : {&w1, &w4}) {
    w->config.rounds = 4;
    w->config.uplink = core::Codec::kInt8;
  }
  Simulation s1 = w1.make_simulation();
  Simulation s4 = w4.make_simulation();
  auto a1 = make_algorithm("fedcm");
  auto a4 = make_algorithm("fedcm");
  expect_same_trajectory(s1.run(*a1), s4.run(*a4), "int8 threads");
}

struct CrashAtRound final : RoundObserver {
  std::size_t crash_round;
  explicit CrashAtRound(std::size_t r) : crash_round(r) {}
  void on_round_end(const RoundRecord& rec) override {
    if (rec.round == crash_round) throw std::runtime_error("injected crash");
  }
};

// Checkpoint/resume under a lossy uplink: the EF residuals ride in the
// checkpoint, so a resumed int8 run is bitwise identical to an
// uninterrupted one.
TEST(UplinkSimulation, ResumeEqualsUninterruptedUnderInt8) {
  auto w = make_world();
  w.config.uplink = core::Codec::kInt8;
  Simulation base = w.make_simulation();
  auto base_alg = make_algorithm("fedwcm");
  const SimulationResult expected = base.run(*base_alg);

  const std::string path = testing::TempDir() + "/fedwcm_uplink_resume.ckpt";
  std::remove(path.c_str());
  {
    Simulation sim = w.make_simulation();
    sim.set_checkpointing({path, 5, false});
    sim.add_observer(std::make_shared<CrashAtRound>(6));
    auto alg = make_algorithm("fedwcm");
    EXPECT_THROW(sim.run(*alg), std::runtime_error);
  }
  Simulation sim = w.make_simulation();
  sim.set_checkpointing({path, 5, true});
  auto alg = make_algorithm("fedwcm");
  const SimulationResult resumed = sim.run(*alg);
  std::remove(path.c_str());
  expect_same_trajectory(resumed, expected, "int8 resume");
  ASSERT_EQ(resumed.history.size(), expected.history.size());
  for (std::size_t i = 0; i < resumed.history.size(); ++i) {
    EXPECT_EQ(resumed.history[i].bytes_up, expected.history[i].bytes_up) << i;
    EXPECT_EQ(resumed.history[i].bytes_down, expected.history[i].bytes_down)
        << i;
  }
}

// A checkpoint written under one uplink config must refuse to resume under
// another (the codec shapes the trajectory, so it is fingerprinted).
TEST(UplinkSimulation, ResumeRejectsUplinkMismatch) {
  auto w = make_world();
  w.config.uplink = core::Codec::kInt8;
  const std::string path = testing::TempDir() + "/fedwcm_uplink_mismatch.ckpt";
  std::remove(path.c_str());
  {
    Simulation sim = w.make_simulation();
    sim.set_checkpointing({path, 3, false});
    auto alg = make_algorithm("fedavg");
    sim.run(*alg);
  }
  for (const auto& [codec, ef] :
       {std::pair{core::Codec::kFp32, true}, {core::Codec::kInt8, false}}) {
    auto other = make_world();
    other.config.uplink = codec;
    other.config.error_feedback = ef;
    Simulation sim = other.make_simulation();
    sim.set_checkpointing({path, 3, true});
    auto alg = make_algorithm("fedavg");
    EXPECT_THROW(sim.run(*alg), std::runtime_error)
        << core::to_string(codec) << " ef=" << ef;
  }
  std::remove(path.c_str());
}

TEST(UplinkSimulation, FingerprintCoversUplinkFields) {
  auto w = make_world();
  const std::string base = config_fingerprint(w.config, 100, "fedwcm");
  auto w_codec = make_world();
  w_codec.config.uplink = core::Codec::kInt8;
  EXPECT_NE(config_fingerprint(w_codec.config, 100, "fedwcm"), base);
  auto w_ef = make_world();
  w_ef.config.error_feedback = false;
  EXPECT_NE(config_fingerprint(w_ef.config, 100, "fedwcm"), base);
}

}  // namespace
}  // namespace fedwcm::fl
