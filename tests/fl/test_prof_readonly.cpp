// The profiling layer observes, never steers: a run with the phase
// accountant, metrics registry, and SIGPROF sampler all enabled must produce
// a bitwise-identical training trajectory to a bare run. (Named without the
// "Prof" prefix on purpose — the TSan CI subset selects on that token, and
// signal-driven sampling does not run under TSan.)
#include <gtest/gtest.h>

#include "fedwcm/fl/registry.hpp"
#include "fedwcm/obs/metrics.hpp"
#include "fedwcm/obs/prof.hpp"
#include "fedwcm/obs/sampler.hpp"
#include "fl_test_util.hpp"

namespace fedwcm::fl {
namespace {

using testutil::make_world;

TEST(Simulation, AccountingAndSamplingAreReadOnly) {
  auto w = make_world();
  w.config.rounds = 4;

  Simulation bare = w.make_simulation();
  auto a1 = make_algorithm("fedwcm");
  const SimulationResult baseline = bare.run(*a1);

  // Second run: everything the --profile/--ledger path turns on.
  obs::metrics().set_enabled(true);
  obs::prof::accountant().reset();
  obs::prof::accountant().set_enabled(true);
  obs::prof::StackSampler sampler;
  obs::prof::StackSampler::Options options;
  options.hz = 199;
  const bool sampling = sampler.start(options);
  Simulation profiled = w.make_simulation();
  auto a2 = make_algorithm("fedwcm");
  const SimulationResult result = profiled.run(*a2);
  if (sampling) sampler.stop();
  obs::prof::accountant().set_enabled(false);
  obs::metrics().set_enabled(false);

  // The accountant saw the run...
  EXPECT_GT(
      obs::prof::accountant().totals(obs::prof::Phase::kLocalTrain).count, 0u);
  EXPECT_GT(
      obs::prof::accountant().totals(obs::prof::Phase::kAggregate).count, 0u);
  obs::prof::accountant().reset();

  // ...and the trajectory never noticed. Bitwise, not approximately.
  EXPECT_EQ(result.history.size(), baseline.history.size());
  ASSERT_EQ(result.final_params.size(), baseline.final_params.size());
  for (std::size_t i = 0; i < result.final_params.size(); ++i)
    ASSERT_EQ(result.final_params[i], baseline.final_params[i]) << i;
}

}  // namespace
}  // namespace fedwcm::fl
