// FlContext construction invariants and the loss-factory plug-ins behind
// the paper's "+Focal / +Balance Loss" method variants.
#include <gtest/gtest.h>

#include "fl_test_util.hpp"

namespace fedwcm::fl {
namespace {

using testutil::make_world;

TEST(FlContext, CountsAreConsistent) {
  auto w = make_world(0.1);
  Simulation sim = w.make_simulation();
  const FlContext& ctx = sim.context();

  // Per-client counts sum to the global counts.
  std::vector<std::size_t> sum(ctx.num_classes(), 0);
  for (std::size_t k = 0; k < ctx.num_clients(); ++k) {
    std::size_t client_total = 0;
    for (std::size_t c = 0; c < ctx.num_classes(); ++c) {
      sum[c] += ctx.client_class_counts[k][c];
      client_total += ctx.client_class_counts[k][c];
    }
    EXPECT_EQ(client_total, ctx.client_size(k));
  }
  EXPECT_EQ(sum, ctx.global_class_counts);

  // Global counts reflect the long-tailed subset (head > tail).
  EXPECT_GT(ctx.global_class_counts.front(), ctx.global_class_counts.back());
  EXPECT_GT(ctx.param_count, 0u);
}

TEST(LossFactories, CrossEntropyForEveryClient) {
  auto factory = cross_entropy_loss_factory();
  EXPECT_EQ(factory(0)->name(), "cross_entropy");
  EXPECT_EQ(factory(7)->name(), "cross_entropy");
}

TEST(LossFactories, FocalCarriesGamma) {
  auto factory = focal_loss_factory(2.0f);
  const auto loss = factory(3);
  EXPECT_EQ(loss->name(), "focal");
  // gamma = 2 must differ from CE on an easy example.
  core::Matrix logits(1, 2, std::vector<float>{4.0f, 0.0f});
  core::Matrix d1, d2;
  const std::vector<std::size_t> y{0};
  nn::CrossEntropyLoss ce;
  EXPECT_LT(loss->compute(logits, y, d1), ce.compute(logits, y, d2));
}

TEST(LossFactories, BalanceLossUsesClientLocalCounts) {
  auto w = make_world(0.05, 0.05);
  Simulation sim = w.make_simulation();
  const FlContext& ctx = sim.context();
  auto factory = balance_loss_factory(ctx);

  // Find two clients with different local distributions: their losses must
  // assign different gradients on identical logits (different priors).
  std::size_t a = SIZE_MAX, b = SIZE_MAX;
  for (std::size_t k = 0; k < ctx.num_clients() && b == SIZE_MAX; ++k) {
    if (ctx.client_size(k) == 0) continue;
    if (a == SIZE_MAX) {
      a = k;
    } else if (ctx.client_class_counts[k] != ctx.client_class_counts[a]) {
      b = k;
    }
  }
  ASSERT_NE(b, SIZE_MAX);
  const auto loss_a = factory(a);
  const auto loss_b = factory(b);
  EXPECT_EQ(loss_a->name(), "balanced_softmax");
  core::Matrix logits(1, ctx.num_classes(), 0.0f);
  core::Matrix da, db;
  const std::vector<std::size_t> y{0};
  loss_a->compute(logits, y, da);
  loss_b->compute(logits, y, db);
  bool differs = false;
  for (std::size_t i = 0; i < da.size(); ++i)
    differs |= std::abs(da.data()[i] - db.data()[i]) > 1e-7f;
  EXPECT_TRUE(differs);
}

}  // namespace
}  // namespace fedwcm::fl
