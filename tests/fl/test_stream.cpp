// StreamAccum: the streaming survivor-renormalized mean must match the
// buffered normalize-then-weighted_sum result to float precision, stay
// within 1 ulp of the exact mean over 10^5 folds, and track fold metadata.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "fedwcm/core/param_vector.hpp"
#include "fedwcm/fl/stream.hpp"

namespace fedwcm::fl {
namespace {

using core::ParamVector;

float ulp_distance(float a, float b) {
  if (a == b) return 0.0f;
  const float scale = std::max(std::abs(a), std::abs(b));
  return std::abs(a - b) / (scale * std::numeric_limits<float>::epsilon());
}

TEST(StreamAccum, UniformHundredThousandFoldsWithinOneUlp) {
  const std::size_t clients = 100000;
  const std::size_t dim = 32;
  ParamVector delta(dim);
  for (std::size_t j = 0; j < dim; ++j) delta[j] = 0.3f + 0.001f * float(j);

  StreamAccum acc;
  acc.reset(dim);
  for (std::size_t i = 0; i < clients; ++i) acc.fold(1.0, delta, 10);
  ParamVector out;
  acc.finalize(out);

  ASSERT_EQ(out.size(), dim);
  // Identical deltas with identical weights: mean == delta exactly up to
  // the final double->float rounding.
  for (std::size_t j = 0; j < dim; ++j)
    EXPECT_LE(ulp_distance(out[j], delta[j]), 1.0f) << "dim " << j;
  EXPECT_EQ(acc.count(), clients);
  EXPECT_DOUBLE_EQ(acc.mean_steps(), 10.0);
}

TEST(StreamAccum, MatchesBufferedWeightedMean) {
  const std::size_t n = 257;
  const std::size_t dim = 48;
  std::vector<ParamVector> deltas(n, ParamVector(dim));
  std::vector<double> u(n);
  for (std::size_t i = 0; i < n; ++i) {
    u[i] = 0.25 + double((i * 37) % 11);
    for (std::size_t j = 0; j < dim; ++j)
      deltas[i][j] = float(std::sin(double(i * dim + j)));
  }

  StreamAccum acc;
  acc.reset(dim);
  for (std::size_t i = 0; i < n; ++i) acc.fold(u[i], deltas[i], 4);
  ParamVector streamed;
  acc.finalize(streamed);

  // Exact reference in double.
  double usum = 0.0;
  for (double v : u) usum += v;
  for (std::size_t j = 0; j < dim; ++j) {
    double s = 0.0;
    for (std::size_t i = 0; i < n; ++i) s += u[i] * double(deltas[i][j]);
    EXPECT_LE(ulp_distance(streamed[j], float(s / usum)), 1.0f) << j;
  }
}

TEST(StreamAccum, ResetClearsState) {
  StreamAccum acc;
  acc.reset(4);
  acc.fold(2.0, ParamVector{1.f, 2.f, 3.f, 4.f}, 8);
  acc.reset(4);
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_EQ(acc.weight(), 0.0);
  EXPECT_DOUBLE_EQ(acc.mean_steps(), 1.0);  // empty -> the >= 1 floor
  acc.fold(1.0, ParamVector{8.f, 8.f, 8.f, 8.f}, 2);
  ParamVector out;
  acc.finalize(out);
  EXPECT_EQ(out, (ParamVector{8.f, 8.f, 8.f, 8.f}));
}

TEST(StreamAccum, MeanStepsHasFloorOfOne) {
  StreamAccum acc;
  acc.reset(1);
  acc.fold(1.0, ParamVector{0.f}, 0);  // a fully-truncated straggler
  EXPECT_DOUBLE_EQ(acc.mean_steps(), 1.0);
}

}  // namespace
}  // namespace fedwcm::fl
