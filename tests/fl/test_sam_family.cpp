// SAM-family baselines (Appendix D): the shared perturb-then-step loop and
// each variant's distinguishing behaviour.
#include <gtest/gtest.h>

#include <cmath>

#include "fedwcm/fl/algorithms/sam.hpp"
#include "fl_test_util.hpp"

namespace fedwcm::fl {
namespace {

using testutil::make_world;

TEST(SamLoop, ZeroRhoMatchesPlainSgd) {
  auto w = make_world();
  w.config.local_epochs = 1;
  Simulation sim = w.make_simulation();
  const FlContext& ctx = sim.context();
  nn::Sequential init = ctx.model_factory();
  core::Rng rng(12);
  init.init_params(rng);
  const ParamVector start = init.get_params();
  Worker worker(ctx.model_factory);
  nn::CrossEntropyLoss loss;

  SamLocalSpec spec;
  spec.rho = 0.0f;
  const LocalResult sam = run_local_sam(ctx, worker, 0, start, 0,
                                        ctx.config->local_lr, loss, spec);
  const LocalResult sgd = run_local_sgd(
      ctx, worker, 0, start, 0, ctx.config->local_lr, loss,
      [](const ParamVector& g, const ParamVector&, ParamVector& v) { v = g; });
  for (std::size_t i = 0; i < sam.delta.size(); ++i)
    ASSERT_NEAR(sam.delta[i], sgd.delta[i], 1e-5f);
}

TEST(SamLoop, PerturbationChangesUpdate) {
  auto w = make_world();
  w.config.local_epochs = 1;
  Simulation sim = w.make_simulation();
  const FlContext& ctx = sim.context();
  nn::Sequential init = ctx.model_factory();
  core::Rng rng(13);
  init.init_params(rng);
  const ParamVector start = init.get_params();
  Worker worker(ctx.model_factory);
  nn::CrossEntropyLoss loss;

  SamLocalSpec flat;
  flat.rho = 0.0f;
  SamLocalSpec sharp;
  sharp.rho = 0.5f;
  const LocalResult a = run_local_sam(ctx, worker, 0, start, 0, 0.05f, loss, flat);
  const LocalResult b = run_local_sam(ctx, worker, 0, start, 0, 0.05f, loss, sharp);
  float diff = 0.0f;
  for (std::size_t i = 0; i < a.delta.size(); ++i)
    diff = std::max(diff, std::abs(a.delta[i] - b.delta[i]));
  EXPECT_GT(diff, 1e-6f);
}

TEST(SamLoop, ProxTermShrinksExcursion) {
  auto w = make_world();
  Simulation sim = w.make_simulation();
  const FlContext& ctx = sim.context();
  nn::Sequential init = ctx.model_factory();
  core::Rng rng(14);
  init.init_params(rng);
  const ParamVector start = init.get_params();
  Worker worker(ctx.model_factory);
  nn::CrossEntropyLoss loss;

  SamLocalSpec free_spec;
  SamLocalSpec prox_spec;
  prox_spec.prox_mu = 5.0f;  // lr*mu < 2: stable, purely damping
  const LocalResult free_run =
      run_local_sam(ctx, worker, 0, start, 0, 0.1f, loss, free_spec);
  const LocalResult prox_run =
      run_local_sam(ctx, worker, 0, start, 0, 0.1f, loss, prox_spec);
  EXPECT_LT(core::pv::l2_norm(prox_run.delta), core::pv::l2_norm(free_run.delta));
}

class SamAlgorithms : public ::testing::TestWithParam<std::string> {};

TEST_P(SamAlgorithms, LearnsAboveChanceOnBalancedData) {
  auto w = make_world(1.0);
  w.config.rounds = 10;
  Simulation sim = w.make_simulation();
  std::unique_ptr<Algorithm> alg;
  const std::string name = GetParam();
  if (name == "fedsam") alg = std::make_unique<FedSam>();
  else if (name == "mofedsam") alg = std::make_unique<MoFedSam>();
  else if (name == "fedlesam") alg = std::make_unique<FedLesam>();
  else if (name == "fedsmoo") alg = std::make_unique<FedSmoo>();
  else alg = std::make_unique<FedSpeed>();
  const SimulationResult res = sim.run(*alg);
  EXPECT_EQ(res.algorithm, name);
  EXPECT_GT(res.final_accuracy, 1.3f / 6.0f) << name;
}

INSTANTIATE_TEST_SUITE_P(AllVariants, SamAlgorithms,
                         ::testing::Values("fedsam", "mofedsam", "fedlesam",
                                           "fedsmoo", "fedspeed"),
                         [](const auto& info) { return info.param; });

TEST(FedLesam, UsesGlobalDirectionOncePresent) {
  // FedLesam inherits FedCM's momentum buffer; after one aggregate it must be
  // non-zero, which switches the perturbation source to the global estimate.
  auto w = make_world();
  w.config.rounds = 2;
  Simulation sim = w.make_simulation();
  FedLesam alg;
  const SimulationResult res = sim.run(alg);
  EXPECT_GT(res.history.back().momentum_norm, 0.0f);
}

}  // namespace
}  // namespace fedwcm::fl
