// Fault injection: seeded drop/straggle/corrupt decisions, graceful
// aggregation degradation, counter consistency, and determinism of
// fault-injected runs.
#include <gtest/gtest.h>

#include "fedwcm/fl/fault.hpp"
#include "fedwcm/fl/local.hpp"
#include "fedwcm/fl/registry.hpp"
#include "fl_test_util.hpp"

namespace fedwcm::fl {
namespace {

using testutil::make_world;

TEST(FaultPlan, DecisionsAreDeterministicAndSeeded) {
  FaultPlan plan;
  plan.drop_prob = 0.3;
  plan.straggler_prob = 0.3;
  plan.corrupt_prob = 0.3;
  for (std::size_t round = 0; round < 4; ++round)
    for (std::size_t client = 0; client < 8; ++client)
      EXPECT_EQ(decide_fault(plan, 42, round, client),
                decide_fault(plan, 42, round, client));

  // A different fault seed reshuffles fates without touching the run seed.
  plan.seed = 9;
  std::size_t differs = 0;
  FaultPlan base = plan;
  base.seed = 0;
  for (std::size_t round = 0; round < 16; ++round)
    for (std::size_t client = 0; client < 8; ++client)
      differs += decide_fault(plan, 42, round, client) !=
                 decide_fault(base, 42, round, client);
  EXPECT_GT(differs, 0u);
}

TEST(FaultPlan, ProbabilitiesPartitionTheUnitInterval) {
  FaultPlan plan;
  plan.drop_prob = 0.2;
  plan.straggler_prob = 0.2;
  plan.corrupt_prob = 0.2;
  std::size_t counts[4] = {0, 0, 0, 0};
  for (std::size_t round = 0; round < 200; ++round)
    for (std::size_t client = 0; client < 10; ++client)
      ++counts[std::size_t(decide_fault(plan, 1, round, client))];
  // 2000 draws at 20% each: every kind (incl. none at 40%) must appear, and
  // empirical rates should be within a loose band of the configured ones.
  for (std::size_t k = 0; k < 4; ++k) EXPECT_GT(counts[k], 0u) << k;
  EXPECT_NEAR(double(counts[std::size_t(FaultKind::kDrop)]) / 2000.0, 0.2, 0.05);
  EXPECT_NEAR(double(counts[std::size_t(FaultKind::kCorrupt)]) / 2000.0, 0.2, 0.05);
}

TEST(FaultPlan, NoFaultsWhenDisabled) {
  FaultPlan plan;  // all probabilities zero
  EXPECT_FALSE(plan.any());
  for (std::size_t round = 0; round < 8; ++round)
    for (std::size_t client = 0; client < 8; ++client)
      EXPECT_EQ(decide_fault(plan, 42, round, client), FaultKind::kNone);
}

TEST(Faults, DroppedClientsAreCountedAndRunStillConverges) {
  auto w = make_world();
  w.config.faults.drop_prob = 0.2;
  Simulation sim = w.make_simulation();
  auto alg = make_algorithm("fedavg");
  const SimulationResult res = sim.run(*alg);

  EXPECT_GT(res.faults_dropped, 0u);
  EXPECT_EQ(res.faults_rejected, 0u);
  EXPECT_TRUE(core::pv::all_finite(res.final_params));
  // 20% drop-out degrades but must not destroy learning: clearly better than
  // the 1/6 chance level of the test world.
  EXPECT_GT(res.best_accuracy, 0.3f);
  // Per-round counters in the history sum consistently with the run totals.
  std::uint64_t history_dropped = 0;
  for (const auto& rec : res.history) history_dropped += rec.dropped;
  EXPECT_LE(history_dropped, res.faults_dropped);
}

TEST(Faults, CorruptedUpdatesAreRejectedNotAggregated) {
  auto w = make_world();
  w.config.faults.corrupt_prob = 0.5;
  Simulation sim = w.make_simulation();
  auto alg = make_algorithm("fedcm");
  const SimulationResult res = sim.run(*alg);

  EXPECT_GT(res.faults_rejected, 0u);
  // The whole point of the rejection guard: NaN uploads never reach the
  // global model.
  EXPECT_TRUE(core::pv::all_finite(res.final_params));
  for (const auto& rec : res.history) EXPECT_EQ(rec.dropped, 0u);
}

TEST(Faults, StragglersRunTruncatedStepsAndAreCounted) {
  auto w = make_world();
  w.config.faults.straggler_prob = 0.6;
  w.config.faults.straggler_factor = 0.5;
  Simulation sim = w.make_simulation();
  auto alg = make_algorithm("fedwcm");
  const SimulationResult res = sim.run(*alg);
  EXPECT_GT(res.faults_straggled, 0u);
  EXPECT_EQ(res.faults_dropped, 0u);
  EXPECT_EQ(res.faults_rejected, 0u);
  EXPECT_TRUE(core::pv::all_finite(res.final_params));
}

TEST(Faults, FaultInjectedRunsAreDeterministic) {
  auto make = [] {
    auto w = make_world();
    w.config.faults.drop_prob = 0.2;
    w.config.faults.straggler_prob = 0.2;
    w.config.faults.corrupt_prob = 0.1;
    return w;
  };
  auto wa = make();
  auto wb = make();
  wb.config.threads = 4;  // thread count must not change fault fates either
  Simulation sa = wa.make_simulation();
  Simulation sb = wb.make_simulation();
  auto a = make_algorithm("fedcm");
  auto b = make_algorithm("fedcm");
  const SimulationResult ra = sa.run(*a);
  const SimulationResult rb = sb.run(*b);
  EXPECT_EQ(ra.final_params, rb.final_params);
  EXPECT_EQ(ra.faults_dropped, rb.faults_dropped);
  EXPECT_EQ(ra.faults_rejected, rb.faults_rejected);
  EXPECT_EQ(ra.faults_straggled, rb.faults_straggled);
}

TEST(Faults, AllClientsDroppedLeavesGlobalAtInit) {
  // With every client dropped every round, no aggregation ever happens and
  // the global model stays at the seeded init — which is identical across
  // algorithms, so two different algorithms must land on the same params.
  auto w = make_world();
  w.config.rounds = 3;
  w.config.faults.drop_prob = 1.0;
  Simulation s1 = w.make_simulation();
  Simulation s2 = w.make_simulation();
  auto a1 = make_algorithm("fedavg");
  auto a2 = make_algorithm("fedcm");
  const SimulationResult r1 = s1.run(*a1);
  const SimulationResult r2 = s2.run(*a2);
  EXPECT_EQ(r1.final_params, r2.final_params);
  EXPECT_EQ(r1.faults_dropped,
            std::uint64_t(w.config.rounds) * w.config.sampled_per_round());
  // Nobody received the broadcast, nobody uploaded.
  for (const auto& rec : r1.history) {
    EXPECT_EQ(rec.bytes_down, 0u);
    EXPECT_EQ(rec.bytes_up, 0u);
    EXPECT_EQ(rec.train_loss, 0.0f);
  }
}

TEST(Faults, StepTruncationHelperContract) {
  EXPECT_EQ(truncate_steps(10, 1.0f), 10u);
  EXPECT_EQ(truncate_steps(10, 0.5f), 5u);
  EXPECT_EQ(truncate_steps(10, 0.05f), 1u);  // never zero steps
  EXPECT_EQ(truncate_steps(0, 0.5f), 0u);
  EXPECT_EQ(truncate_steps(7, 2.0f), 7u);
}

}  // namespace
}  // namespace fedwcm::fl
