// Convergence diagnostics (§6): exact full-batch gradient norm, the
// inverse-sqrt rate fit, and the simulation train-probe plumbing.
#include <gtest/gtest.h>

#include <cmath>

#include "fedwcm/fl/diagnostics.hpp"
#include "fedwcm/fl/registry.hpp"
#include "fl_test_util.hpp"

namespace fedwcm::fl {
namespace {

using testutil::make_world;

TEST(Diagnostics, GradNormMatchesClientGradientComposition) {
  auto w = make_world();
  Simulation sim = w.make_simulation();
  const FlContext& ctx = sim.context();
  nn::Sequential model = ctx.model_factory();
  core::Rng rng(21);
  model.init_params(rng);
  const ParamVector params = model.get_params();

  // Direct computation over the union of all client indices.
  std::vector<std::size_t> all_indices;
  for (const auto& ci : ctx.partition->client_indices)
    all_indices.insert(all_indices.end(), ci.begin(), ci.end());
  const float direct =
      global_grad_norm_sq(model, *ctx.train, all_indices, params);

  // Composition: n_k-weighted mean of per-client full gradients.
  nn::CrossEntropyLoss ce;
  Worker worker(ctx.model_factory);
  ParamVector mean_grad(params.size(), 0.0f);
  for (std::size_t k = 0; k < ctx.num_clients(); ++k) {
    if (ctx.client_size(k) == 0) continue;
    const ParamVector g = client_full_gradient(ctx, worker, k, params, ce);
    core::pv::accumulate(mean_grad,
                         float(ctx.client_size(k)) / float(all_indices.size()), g);
  }
  EXPECT_NEAR(direct, core::pv::l2_norm_sq(mean_grad),
              std::max(1e-4f, direct * 0.01f));
}

TEST(Diagnostics, GradNormDecreasesWithTraining) {
  auto w = make_world(1.0);
  w.config.rounds = 12;
  w.config.eval_every = 1;
  Simulation sim = w.make_simulation();
  sim.set_train_probe([&w](nn::Sequential& model, const data::Dataset& train) {
    return global_grad_norm_sq(model, train, w.subset, model.get_params());
  });
  auto alg = make_algorithm("fedavg");
  const SimulationResult res = sim.run(*alg);
  ASSERT_GE(res.history.size(), 4u);
  // The late-training gradient norm must be well below the initial one.
  EXPECT_LT(res.history.back().train_metric,
            res.history.front().train_metric * 0.8f);
  for (const auto& rec : res.history) EXPECT_GE(rec.train_metric, 0.0f);
}

TEST(Diagnostics, FitInverseSqrtRecoversExactLaw) {
  const std::vector<double> rounds{10, 40, 90, 160};
  std::vector<double> values;
  for (double r : rounds) values.push_back(3.0 / std::sqrt(r));
  const RateFit fit = fit_inverse_sqrt(rounds, values);
  EXPECT_NEAR(fit.c, 3.0, 1e-9);
  EXPECT_NEAR(fit.max_rel_residual, 0.0, 1e-9);
}

TEST(Diagnostics, FitReportsResidualForNonConformingData) {
  const std::vector<double> rounds{10, 40, 90, 160};
  const std::vector<double> constant{1.0, 1.0, 1.0, 1.0};  // no decay at all
  const RateFit fit = fit_inverse_sqrt(rounds, constant);
  EXPECT_GT(fit.max_rel_residual, 0.3);
}

TEST(Diagnostics, InvalidInputsRejected) {
  nn::Sequential model = nn::make_mlp(3, {}, 2);
  data::Dataset ds;
  ds.num_classes = 2;
  const ParamVector params(model.param_count(), 0.0f);
  EXPECT_THROW(global_grad_norm_sq(model, ds, {}, params), std::invalid_argument);
  EXPECT_THROW(fit_inverse_sqrt(std::vector<double>{1.0}, std::vector<double>{}),
               std::invalid_argument);
}

}  // namespace
}  // namespace fedwcm::fl
