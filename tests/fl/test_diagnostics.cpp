// Convergence diagnostics (§6): exact full-batch gradient norm, the
// inverse-sqrt rate fit, the simulation train-probe plumbing, and the
// per-round dynamics telemetry (momentum alignment / dispersion / drift).
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "fedwcm/fl/diagnostics.hpp"
#include "fedwcm/fl/registry.hpp"
#include "fl_test_util.hpp"

namespace fedwcm::fl {
namespace {

using testutil::make_world;

LocalResult make_local(std::vector<float> delta, std::size_t samples) {
  LocalResult r;
  r.delta = std::move(delta);
  r.num_samples = samples;
  return r;
}

TEST(Diagnostics, GradNormMatchesClientGradientComposition) {
  auto w = make_world();
  Simulation sim = w.make_simulation();
  const FlContext& ctx = sim.context();
  nn::Sequential model = ctx.model_factory();
  core::Rng rng(21);
  model.init_params(rng);
  const ParamVector params = model.get_params();

  // Direct computation over the union of all client indices.
  std::vector<std::size_t> all_indices;
  for (const auto& ci : ctx.partition->client_indices)
    all_indices.insert(all_indices.end(), ci.begin(), ci.end());
  const float direct =
      global_grad_norm_sq(model, *ctx.train, all_indices, params);

  // Composition: n_k-weighted mean of per-client full gradients.
  nn::CrossEntropyLoss ce;
  Worker worker(ctx.model_factory);
  ParamVector mean_grad(params.size(), 0.0f);
  for (std::size_t k = 0; k < ctx.num_clients(); ++k) {
    if (ctx.client_size(k) == 0) continue;
    const ParamVector g = client_full_gradient(ctx, worker, k, params, ce);
    core::pv::accumulate(mean_grad,
                         float(ctx.client_size(k)) / float(all_indices.size()), g);
  }
  EXPECT_NEAR(direct, core::pv::l2_norm_sq(mean_grad),
              std::max(1e-4f, direct * 0.01f));
}

TEST(Diagnostics, GradNormDecreasesWithTraining) {
  auto w = make_world(1.0);
  w.config.rounds = 12;
  w.config.eval_every = 1;
  Simulation sim = w.make_simulation();
  sim.set_train_probe([&w](nn::Sequential& model, const data::Dataset& train) {
    return global_grad_norm_sq(model, train, w.subset, model.get_params());
  });
  auto alg = make_algorithm("fedavg");
  const SimulationResult res = sim.run(*alg);
  ASSERT_GE(res.history.size(), 4u);
  // The late-training gradient norm must be well below the initial one.
  EXPECT_LT(res.history.back().train_metric,
            res.history.front().train_metric * 0.8f);
  for (const auto& rec : res.history) EXPECT_GE(rec.train_metric, 0.0f);
}

TEST(Diagnostics, FitInverseSqrtRecoversExactLaw) {
  const std::vector<double> rounds{10, 40, 90, 160};
  std::vector<double> values;
  for (double r : rounds) values.push_back(3.0 / std::sqrt(r));
  const RateFit fit = fit_inverse_sqrt(rounds, values);
  EXPECT_NEAR(fit.c, 3.0, 1e-9);
  EXPECT_NEAR(fit.max_rel_residual, 0.0, 1e-9);
}

TEST(Diagnostics, FitReportsResidualForNonConformingData) {
  const std::vector<double> rounds{10, 40, 90, 160};
  const std::vector<double> constant{1.0, 1.0, 1.0, 1.0};  // no decay at all
  const RateFit fit = fit_inverse_sqrt(rounds, constant);
  EXPECT_GT(fit.max_rel_residual, 0.3);
}

TEST(Diagnostics, InvalidInputsRejected) {
  nn::Sequential model = nn::make_mlp(3, {}, 2);
  data::Dataset ds;
  ds.num_classes = 2;
  const ParamVector params(model.param_count(), 0.0f);
  EXPECT_THROW(global_grad_norm_sq(model, ds, {}, params), std::invalid_argument);
  EXPECT_THROW(fit_inverse_sqrt(std::vector<double>{1.0}, std::vector<double>{}),
               std::invalid_argument);
}

TEST(RoundDiagnostics, KnownGeometryUniformWeights) {
  // Momentum along e1; one aligned client (cos = 1), one orthogonal (cos = 0),
  // equal (uniform) weights.
  const ParamVector momentum{1.0f, 0.0f};
  std::vector<LocalResult> accepted;
  accepted.push_back(make_local({2.0f, 0.0f}, 0));
  accepted.push_back(make_local({0.0f, 3.0f}, 0));
  const RoundDiagnostics d = compute_round_diagnostics(accepted, &momentum);

  EXPECT_NEAR(d.momentum_alignment, 0.5f, 1e-6f);
  EXPECT_NEAR(d.alignment_min, 0.0f, 1e-6f);
  EXPECT_NEAR(d.update_norm_mean, 2.5f, 1e-6f);
  // Norms {2, 3}: std = 0.5 -> cv = 0.2.
  EXPECT_NEAR(d.update_norm_cv, 0.2f, 1e-6f);
  // Mean update (1, 1.5); both clients sit sqrt(3.25) away from it.
  EXPECT_NEAR(d.drift_norm, std::sqrt(3.25f), 1e-5f);
}

TEST(RoundDiagnostics, SampleCountWeighting) {
  const ParamVector momentum{1.0f, 0.0f};
  std::vector<LocalResult> accepted;
  accepted.push_back(make_local({1.0f, 0.0f}, 3));   // cos = 1, weight 0.75
  accepted.push_back(make_local({0.0f, 1.0f}, 1));   // cos = 0, weight 0.25
  const RoundDiagnostics d = compute_round_diagnostics(accepted, &momentum);
  EXPECT_NEAR(d.momentum_alignment, 0.75f, 1e-6f);
  EXPECT_NEAR(d.alignment_min, 0.0f, 1e-6f);
  EXPECT_NEAR(d.update_norm_mean, 1.0f, 1e-6f);
  EXPECT_NEAR(d.update_norm_cv, 0.0f, 1e-6f);
}

TEST(RoundDiagnostics, OpposedClientGoesNegative) {
  const ParamVector momentum{1.0f, 0.0f};
  std::vector<LocalResult> accepted;
  accepted.push_back(make_local({-1.0f, 0.0f}, 0));
  const RoundDiagnostics d = compute_round_diagnostics(accepted, &momentum);
  EXPECT_NEAR(d.momentum_alignment, -1.0f, 1e-6f);
  EXPECT_NEAR(d.alignment_min, -1.0f, 1e-6f);
  EXPECT_NEAR(d.drift_norm, 0.0f, 1e-6f);  // single client = its own mean
}

TEST(RoundDiagnostics, NoMomentumLeavesAlignmentZero) {
  std::vector<LocalResult> accepted;
  accepted.push_back(make_local({1.0f, 1.0f}, 0));
  const ParamVector zero{0.0f, 0.0f};
  for (const ParamVector* m : {static_cast<const ParamVector*>(nullptr), &zero}) {
    const RoundDiagnostics d = compute_round_diagnostics(accepted, m);
    EXPECT_EQ(d.momentum_alignment, 0.0f);
    EXPECT_EQ(d.alignment_min, 0.0f);
    EXPECT_GT(d.update_norm_mean, 0.0f);
  }
}

TEST(RoundDiagnostics, EmptyRoundIsAllZero) {
  const ParamVector momentum{1.0f};
  const RoundDiagnostics d = compute_round_diagnostics({}, &momentum);
  EXPECT_EQ(d.momentum_alignment, 0.0f);
  EXPECT_EQ(d.update_norm_mean, 0.0f);
  EXPECT_EQ(d.update_norm_cv, 0.0f);
  EXPECT_EQ(d.drift_norm, 0.0f);
}

TEST(DiagnosticsObserver, AnnotatesEveryEvaluatedRound) {
  auto w = make_world();
  Simulation sim = w.make_simulation();
  sim.add_observer(std::make_shared<DiagnosticsObserver>());
  auto alg = make_algorithm("fedwcm");
  const SimulationResult res = sim.run(*alg);
  ASSERT_FALSE(res.history.empty());
  for (const auto& rec : res.history) {
    EXPECT_TRUE(rec.diagnostics);
    EXPECT_GE(rec.momentum_alignment, -1.0f);
    EXPECT_LE(rec.momentum_alignment, 1.0f);
    EXPECT_LE(rec.alignment_min, rec.momentum_alignment + 1e-6f);
    EXPECT_GT(rec.update_norm_mean, 0.0f);
    EXPECT_GE(rec.update_norm_cv, 0.0f);
    EXPECT_GE(rec.drift_norm, 0.0f);
  }
}

TEST(DiagnosticsObserver, MomentumAlgorithmsReportAlignment) {
  // After the first round FedCM/FedWCM carry nonzero momentum, so the
  // alignment fields must actually move off zero for some evaluated round.
  for (const char* name : {"fedcm", "fedwcm"}) {
    auto w = make_world();
    Simulation sim = w.make_simulation();
    sim.add_observer(std::make_shared<DiagnosticsObserver>());
    auto alg = make_algorithm(name);
    const SimulationResult res = sim.run(*alg);
    bool any_nonzero = false;
    for (const auto& rec : res.history)
      any_nonzero = any_nonzero || rec.momentum_alignment != 0.0f;
    EXPECT_TRUE(any_nonzero) << name;
  }
}

// The observer must be strictly read-only: attaching it cannot change a
// single bit of the training trajectory, for any algorithm family.
TEST(DiagnosticsObserver, TrajectoryBitwiseIdenticalWithAndWithoutDiag) {
  for (const char* name : {"fedavg", "fedcm", "fedwcm"}) {
    auto w = make_world();
    Simulation plain_sim = w.make_simulation();
    auto plain_alg = make_algorithm(name);
    const SimulationResult plain = plain_sim.run(*plain_alg);

    Simulation diag_sim = w.make_simulation();
    diag_sim.add_observer(std::make_shared<DiagnosticsObserver>());
    auto diag_alg = make_algorithm(name);
    const SimulationResult diag = diag_sim.run(*diag_alg);

    ASSERT_EQ(plain.final_params.size(), diag.final_params.size()) << name;
    for (std::size_t i = 0; i < plain.final_params.size(); ++i)
      ASSERT_EQ(plain.final_params[i], diag.final_params[i])
          << name << " param " << i;
    ASSERT_EQ(plain.history.size(), diag.history.size()) << name;
    for (std::size_t i = 0; i < plain.history.size(); ++i) {
      const RoundRecord& a = plain.history[i];
      const RoundRecord& b = diag.history[i];
      EXPECT_EQ(a.round, b.round) << name;
      EXPECT_EQ(a.test_accuracy, b.test_accuracy) << name << " round " << i;
      EXPECT_EQ(a.train_loss, b.train_loss) << name << " round " << i;
      EXPECT_EQ(a.alpha, b.alpha) << name << " round " << i;
      EXPECT_EQ(a.momentum_norm, b.momentum_norm) << name << " round " << i;
      EXPECT_EQ(a.bytes_up, b.bytes_up) << name;
      EXPECT_EQ(a.bytes_down, b.bytes_down) << name;
      EXPECT_EQ(a.per_class_accuracy, b.per_class_accuracy) << name;
      // The only permitted difference is the annotation itself.
      EXPECT_FALSE(a.diagnostics) << name;
      EXPECT_TRUE(b.diagnostics) << name;
    }
  }
}

TEST(Simulation, PerClassAccuracyOnEveryEvaluatedRound) {
  auto w = make_world();
  Simulation sim = w.make_simulation();
  auto alg = make_algorithm("fedavg");
  const SimulationResult res = sim.run(*alg);
  ASSERT_FALSE(res.history.empty());
  for (const auto& rec : res.history) {
    ASSERT_EQ(rec.per_class_accuracy.size(), w.data.train.num_classes);
    for (float a : rec.per_class_accuracy) {
      EXPECT_GE(a, 0.0f);
      EXPECT_LE(a, 1.0f);
    }
  }
  // The run-level field is a view of the last evaluated round.
  EXPECT_EQ(res.per_class_accuracy, res.history.back().per_class_accuracy);
}

}  // namespace
}  // namespace fedwcm::fl
