// FedAdam / FedYogi server optimizers: moment updates, adaptivity floor,
// Yogi's sign-damped second moment, end-to-end learning.
#include <gtest/gtest.h>

#include <cmath>

#include "fedwcm/fl/algorithms/fedopt.hpp"
#include "fedwcm/fl/registry.hpp"
#include "fl_test_util.hpp"

namespace fedwcm::fl {
namespace {

using testutil::make_world;

LocalResult stub(std::size_t dim, float fill) {
  LocalResult r;
  r.client = 0;
  r.num_samples = 10;
  r.num_steps = 5;
  r.delta.assign(dim, fill);
  return r;
}

TEST(FedAdam, FirstStepMatchesHandComputation) {
  auto w = make_world();
  w.config.global_lr = 1.0f;
  Simulation sim = w.make_simulation();
  FedOptOptions opt;
  opt.beta1 = 0.5f;
  opt.beta2 = 0.5f;
  opt.tau = 0.1f;
  FedAdam alg(opt);
  alg.initialize(sim.context());
  const std::size_t dim = sim.context().param_count;
  ParamVector global(dim, 0.0f);
  std::vector<LocalResult> results{stub(dim, 2.0f)};
  alg.aggregate(results, 0, global);
  // m = 0.5*0 + 0.5*2 = 1; v = 0.5*tau^2 + 0.5*4 = 2.005;
  // x = -1 / (sqrt(2.005) + 0.1).
  const float expected = -1.0f / (std::sqrt(0.5f * 0.01f + 0.5f * 4.0f) + 0.1f);
  EXPECT_NEAR(global[0], expected, 1e-5f);
  EXPECT_NEAR(alg.first_moment()[0], 1.0f, 1e-6f);
}

TEST(FedYogi, SecondMomentMovesTowardSquaredDelta) {
  auto w = make_world();
  Simulation sim = w.make_simulation();
  FedOptOptions opt;
  opt.beta2 = 0.9f;
  opt.tau = 0.01f;
  FedYogi alg(opt);
  alg.initialize(sim.context());
  const std::size_t dim = sim.context().param_count;
  ParamVector global(dim, 0.0f);
  // d^2 = 4 > v0 = tau^2: Yogi adds (1-beta2) d^2.
  std::vector<LocalResult> up{stub(dim, 2.0f)};
  alg.aggregate(up, 0, global);
  EXPECT_NEAR(alg.second_moment()[0], 0.0001f + 0.1f * 4.0f, 1e-5f);
  // A subsequent tiny delta (d^2 < v): Yogi *subtracts*, unlike Adam's decay
  // toward d^2 — the damping property.
  const float v_before = alg.second_moment()[0];
  std::vector<LocalResult> down{stub(dim, 0.01f)};
  alg.aggregate(down, 1, global);
  EXPECT_LT(alg.second_moment()[0], v_before);
  EXPECT_GE(alg.second_moment()[0], 0.0f);
}

TEST(FedAdamYogi, AdaptivityFloorPreventsBlowup) {
  auto w = make_world();
  w.config.global_lr = 1.0f;
  Simulation sim = w.make_simulation();
  FedOptOptions opt;
  FedAdam alg(opt);
  alg.initialize(sim.context());
  const std::size_t dim = sim.context().param_count;
  ParamVector global(dim, 0.0f);
  // Zero delta: the update must be exactly zero (no division blowup).
  std::vector<LocalResult> zero{stub(dim, 0.0f)};
  alg.aggregate(zero, 0, global);
  for (float v : global) EXPECT_FLOAT_EQ(v, 0.0f);
}

class FedOptLearns : public ::testing::TestWithParam<std::string> {};

TEST_P(FedOptLearns, AboveChanceOnBalancedData) {
  auto w = make_world(1.0);
  w.config.rounds = 12;
  // Adaptive server optimizers need a smaller server LR than eta_g = 1.
  w.config.global_lr = 0.03f;
  Simulation sim = w.make_simulation();
  auto alg = make_algorithm(GetParam());
  const SimulationResult res = sim.run(*alg);
  EXPECT_GT(res.final_accuracy, 1.3f / 6.0f) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Both, FedOptLearns,
                         ::testing::Values("fedadam", "fedyogi"),
                         [](const auto& info) { return info.param; });

}  // namespace
}  // namespace fedwcm::fl
