// Local training loop: the inner loop of Algorithm 1. One gradient step must
// match a hand-rolled SGD step; deltas carry the right sign; custom samplers
// and direction rules are honoured.
#include "fedwcm/fl/local.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "fl_test_util.hpp"

namespace fedwcm::fl {
namespace {

using testutil::make_world;

TEST(LocalSgd, DeltaIsStartMinusEnd) {
  auto w = make_world();
  w.config.local_epochs = 1;
  Simulation sim = w.make_simulation();
  const FlContext& ctx = sim.context();
  Worker worker(ctx.model_factory);
  core::Rng rng(1);
  worker.model.init_params(rng);
  const ParamVector start = worker.model.get_params();
  nn::CrossEntropyLoss loss;
  const LocalResult res = run_local_sgd(
      ctx, worker, 0, start, 0, 0.05f, loss,
      [](const ParamVector& g, const ParamVector&, ParamVector& v) { v = g; });
  EXPECT_EQ(res.client, 0u);
  EXPECT_EQ(res.delta.size(), start.size());
  EXPECT_GT(core::pv::l2_norm(res.delta), 0.0f);
  EXPECT_GT(res.num_steps, 0u);
  EXPECT_EQ(res.num_samples, ctx.client_size(0));
  // Loss should be finite and positive for an untrained model.
  EXPECT_GT(res.mean_loss, 0.0f);
}

TEST(LocalSgd, SingleStepMatchesManualSgd) {
  auto w = make_world();
  w.config.local_epochs = 1;
  w.config.batch_size = 10000;  // one batch containing the whole client
  Simulation sim = w.make_simulation();
  const FlContext& ctx = sim.context();
  Worker worker(ctx.model_factory);
  core::Rng rng(2);
  worker.model.init_params(rng);
  const ParamVector start = worker.model.get_params();
  nn::CrossEntropyLoss loss;

  const float lr = 0.1f;
  const LocalResult res = run_local_sgd(
      ctx, worker, 1, start, 0, lr, loss,
      [](const ParamVector& g, const ParamVector&, ParamVector& v) { v = g; });
  ASSERT_EQ(res.num_steps, 1u);

  // Manual: gradient over the full client dataset at `start`.
  Worker probe(ctx.model_factory);
  const ParamVector g = client_full_gradient(ctx, probe, 1, start, loss);
  // delta = start - (start - lr g) = lr g.
  for (std::size_t i = 0; i < g.size(); ++i)
    ASSERT_NEAR(res.delta[i], lr * g[i], 1e-5f) << "param " << i;
}

TEST(LocalSgd, DirectionRuleIsApplied) {
  auto w = make_world();
  w.config.local_epochs = 1;
  Simulation sim = w.make_simulation();
  const FlContext& ctx = sim.context();
  Worker worker(ctx.model_factory);
  core::Rng rng(3);
  worker.model.init_params(rng);
  const ParamVector start = worker.model.get_params();
  nn::CrossEntropyLoss loss;
  // Zero direction -> model must not move.
  const LocalResult frozen = run_local_sgd(
      ctx, worker, 0, start, 0, 0.1f, loss,
      [](const ParamVector& g, const ParamVector&, ParamVector& v) {
        v.assign(g.size(), 0.0f);
      });
  EXPECT_FLOAT_EQ(core::pv::l2_norm(frozen.delta), 0.0f);
}

TEST(LocalSgd, StepsCountHonoursEpochsAndBatches) {
  auto w = make_world();
  w.config.local_epochs = 3;
  w.config.batch_size = 7;
  Simulation sim = w.make_simulation();
  const FlContext& ctx = sim.context();
  Worker worker(ctx.model_factory);
  nn::CrossEntropyLoss loss;
  const ParamVector start(ctx.param_count, 0.0f);
  const LocalResult res = run_local_sgd(
      ctx, worker, 2, start, 0, 0.01f, loss,
      [](const ParamVector& g, const ParamVector&, ParamVector& v) { v = g; });
  const std::size_t n = ctx.client_size(2);
  const std::size_t batches = (n + 6) / 7;
  EXPECT_EQ(res.num_steps, batches * 3);
}

TEST(LocalSgd, BalancedSamplerConfigIsUsed) {
  auto w = make_world(/*imbalance=*/0.05);
  w.config.balanced_sampler = true;
  Simulation sim = w.make_simulation();
  const FlContext& ctx = sim.context();
  auto sampler = make_sampler(ctx, 0, 0);
  // BalancedClassSampler is the only sampler with replacement, so sampling a
  // large batch must stay inside the client's index set.
  std::vector<std::size_t> batch;
  sampler->next_batch(batch);
  const auto& owned = ctx.partition->client_indices[0];
  for (std::size_t i : batch)
    EXPECT_NE(std::find(owned.begin(), owned.end(), i), owned.end());
}

TEST(ClientFullGradient, MatchesBatchMeanDecomposition) {
  auto w = make_world();
  Simulation sim = w.make_simulation();
  const FlContext& ctx = sim.context();
  Worker worker(ctx.model_factory);
  core::Rng rng(5);
  worker.model.init_params(rng);
  const ParamVector params = worker.model.get_params();
  nn::CrossEntropyLoss loss;
  const ParamVector g1 = client_full_gradient(ctx, worker, 0, params, loss);
  // Same value when computed again (pure function).
  Worker worker2(ctx.model_factory);
  const ParamVector g2 = client_full_gradient(ctx, worker2, 0, params, loss);
  for (std::size_t i = 0; i < g1.size(); ++i) ASSERT_NEAR(g1[i], g2[i], 1e-6f);
}

}  // namespace
}  // namespace fedwcm::fl
