// FedCM: the Eq. 2/6 momentum blend, the Delta normalization of Algorithm 1,
// and the EMA property Delta_{r+1} = alpha g-bar + (1-alpha) Delta_r.
#include <gtest/gtest.h>

#include <cmath>

#include "fedwcm/fl/algorithms/fedcm.hpp"
#include "fl_test_util.hpp"

namespace fedwcm::fl {
namespace {

using testutil::make_world;

TEST(FedCM, FirstRoundEqualsScaledGradientDescent) {
  // With Delta_0 = 0, v = alpha g: FedCM's first local pass is FedAvg with an
  // alpha-scaled learning rate.
  auto w = make_world();
  w.config.local_epochs = 1;
  Simulation sim = w.make_simulation();
  const FlContext& ctx = sim.context();
  nn::Sequential init = ctx.model_factory();
  core::Rng rng(6);
  init.init_params(rng);
  const ParamVector start = init.get_params();

  const float alpha = 0.25f;
  FedCM cm(alpha);
  cm.initialize(ctx);
  Worker worker(ctx.model_factory);
  const LocalResult momentum_step = cm.local_update(0, start, 0, worker);

  // Reference: plain SGD with lr * alpha.
  nn::CrossEntropyLoss loss;
  const LocalResult plain = run_local_sgd(
      ctx, worker, 0, start, 0, ctx.config->local_lr * alpha, loss,
      [](const ParamVector& g, const ParamVector&, ParamVector& v) { v = g; });
  ASSERT_EQ(momentum_step.delta.size(), plain.delta.size());
  for (std::size_t i = 0; i < plain.delta.size(); ++i)
    ASSERT_NEAR(momentum_step.delta[i], plain.delta[i], 1e-5f);
}

TEST(FedCM, MomentumIsStepNormalizedAggregate) {
  auto w = make_world();
  Simulation sim = w.make_simulation();
  const FlContext& ctx = sim.context();
  FedCM cm(0.1f);
  cm.initialize(ctx);

  const std::size_t dim = ctx.param_count;
  std::vector<LocalResult> results(2);
  for (std::size_t i = 0; i < 2; ++i) {
    results[i].client = i;
    results[i].num_samples = 10;
    results[i].num_steps = 4;
    results[i].delta.assign(dim, i == 0 ? 1.0f : 3.0f);
  }
  ParamVector global(dim, 0.0f);
  cm.aggregate(results, 0, global);
  // agg = 2 (uniform mean); momentum = agg / (eta_l * B) = 2 / (0.1*4) = 5.
  EXPECT_NEAR(cm.momentum()[0], 2.0f / (ctx.config->local_lr * 4.0f), 1e-5f);
  // Server: global -= eta_g * agg.
  EXPECT_NEAR(global[0], -ctx.config->global_lr * 2.0f, 1e-5f);
  EXPECT_FLOAT_EQ(cm.current_alpha(), 0.1f);
  EXPECT_GT(cm.momentum_norm(), 0.0f);
}

TEST(FedCM, MomentumBlendUsedInLocalSteps) {
  // Second-round local update with a non-zero momentum must differ from the
  // first-round (zero-momentum) update from the same start.
  auto w = make_world();
  w.config.local_epochs = 1;
  Simulation sim = w.make_simulation();
  const FlContext& ctx = sim.context();
  nn::Sequential init = ctx.model_factory();
  core::Rng rng(7);
  init.init_params(rng);
  const ParamVector start = init.get_params();

  FedCM cm(0.1f);
  cm.initialize(ctx);
  Worker worker(ctx.model_factory);
  const LocalResult round0 = cm.local_update(0, start, 0, worker);

  std::vector<LocalResult> results{round0};
  ParamVector global = start;
  cm.aggregate(results, 0, global);
  ASSERT_GT(cm.momentum_norm(), 0.0f);

  const LocalResult round1 = cm.local_update(0, start, 0, worker);
  float diff = 0.0f;
  for (std::size_t i = 0; i < round0.delta.size(); ++i)
    diff = std::max(diff, std::abs(round0.delta[i] - round1.delta[i]));
  EXPECT_GT(diff, 1e-6f);
}

TEST(FedCM, EmaIdentityHoldsWhenClientsFollowMomentumOnly) {
  // If alpha = 0, clients move exactly along Delta for every step, so the
  // next momentum equals the previous one: Delta_{r+1} = Delta_r.
  auto w = make_world();
  w.config.local_epochs = 1;
  Simulation sim = w.make_simulation();
  const FlContext& ctx = sim.context();
  FedCM cm(0.0f);
  cm.initialize(ctx);
  // Seed the momentum manually via one aggregate of synthetic results.
  const std::size_t dim = ctx.param_count;
  std::vector<LocalResult> seed(1);
  seed[0].client = 0;
  seed[0].num_samples = 10;
  seed[0].num_steps = 2;
  seed[0].delta.assign(dim, 0.4f);
  ParamVector global(dim, 0.0f);
  cm.aggregate(seed, 0, global);
  const ParamVector delta_r = cm.momentum();

  Worker worker(ctx.model_factory);
  nn::Sequential init = ctx.model_factory();
  core::Rng rng(8);
  init.init_params(rng);
  const ParamVector start = init.get_params();
  const LocalResult res = cm.local_update(0, start, 1, worker);
  std::vector<LocalResult> results{res};
  ParamVector g2 = start;
  cm.aggregate(results, 1, g2);
  for (std::size_t i = 0; i < dim; ++i)
    ASSERT_NEAR(cm.momentum()[i], delta_r[i], 1e-4f) << i;
}

TEST(FedCM, FullRunConvergesOnBalancedData) {
  auto w = make_world(/*imbalance=*/1.0);
  w.config.rounds = 12;
  Simulation sim = w.make_simulation();
  FedCM cm(0.1f);
  const SimulationResult res = sim.run(cm);
  EXPECT_GT(res.final_accuracy, 1.5f / 6.0f);
  // RoundRecord should carry alpha and momentum diagnostics.
  EXPECT_FLOAT_EQ(res.history.back().alpha, 0.1f);
  EXPECT_GT(res.history.back().momentum_norm, 0.0f);
}

}  // namespace
}  // namespace fedwcm::fl
