// Evaluation: accuracy/loss on constructed models with known behaviour.
#include "fedwcm/fl/evaluate.hpp"

#include <gtest/gtest.h>

#include "fedwcm/core/param_vector.hpp"
#include "fedwcm/nn/linear.hpp"
#include "fedwcm/nn/models.hpp"

namespace fedwcm::fl {
namespace {

using core::ParamVector;

// A dataset where feature[0] encodes the class directly.
data::Dataset encoded_dataset(std::size_t n_per_class, std::size_t classes) {
  data::Dataset ds;
  ds.num_classes = classes;
  ds.features = core::Matrix(n_per_class * classes, classes);
  ds.labels.resize(n_per_class * classes);
  std::size_t row = 0;
  for (std::size_t c = 0; c < classes; ++c)
    for (std::size_t i = 0; i < n_per_class; ++i, ++row) {
      ds.features(row, c) = 1.0f;  // one-hot features
      ds.labels[row] = c;
    }
  return ds;
}

TEST(Evaluate, PerfectModelGetsFullAccuracy) {
  const auto ds = encoded_dataset(5, 4);
  nn::Sequential model;
  model.add(std::make_unique<nn::Linear>(4, 4, /*bias=*/false));
  // Identity weights: logits = one-hot features -> argmax = class.
  ParamVector identity(16, 0.0f);
  for (std::size_t i = 0; i < 4; ++i) identity[i * 4 + i] = 10.0f;
  const EvalResult res = evaluate(model, identity, ds, 3);
  EXPECT_FLOAT_EQ(res.accuracy, 1.0f);
  for (float a : res.per_class_accuracy) EXPECT_FLOAT_EQ(a, 1.0f);
  EXPECT_LT(res.mean_loss, 0.01f);
}

TEST(Evaluate, AntiModelGetsZero) {
  const auto ds = encoded_dataset(5, 4);
  nn::Sequential model;
  model.add(std::make_unique<nn::Linear>(4, 4, /*bias=*/false));
  // Shifted identity: predicts class (c+1) mod 4.
  ParamVector shifted(16, 0.0f);
  for (std::size_t i = 0; i < 4; ++i) shifted[i * 4 + ((i + 1) % 4)] = 10.0f;
  const EvalResult res = evaluate(model, shifted, ds, 7);
  EXPECT_FLOAT_EQ(res.accuracy, 0.0f);
  EXPECT_GT(res.mean_loss, 1.0f);
}

TEST(Evaluate, PerClassAccuracyIsolatesClasses) {
  const auto ds = encoded_dataset(4, 3);
  nn::Sequential model;
  model.add(std::make_unique<nn::Linear>(3, 3, /*bias=*/false));
  // Correct on classes 0 and 1; class 2 maps to class 0.
  ParamVector wconf(9, 0.0f);
  wconf[0 * 3 + 0] = 10.0f;
  wconf[1 * 3 + 1] = 10.0f;
  wconf[2 * 3 + 0] = 10.0f;
  const EvalResult res = evaluate(model, wconf, ds, 4);
  EXPECT_NEAR(res.accuracy, 2.0f / 3.0f, 1e-6f);
  EXPECT_FLOAT_EQ(res.per_class_accuracy[0], 1.0f);
  EXPECT_FLOAT_EQ(res.per_class_accuracy[1], 1.0f);
  EXPECT_FLOAT_EQ(res.per_class_accuracy[2], 0.0f);
}

TEST(Evaluate, BatchSizeDoesNotChangeResult) {
  const auto ds = encoded_dataset(7, 5);
  nn::Sequential model = nn::make_mlp(5, {8}, 5);
  core::Rng rng(3);
  model.init_params(rng);
  const ParamVector p = model.get_params();
  const EvalResult a = evaluate(model, p, ds, 1);
  const EvalResult b = evaluate(model, p, ds, 64);
  EXPECT_FLOAT_EQ(a.accuracy, b.accuracy);
  EXPECT_NEAR(a.mean_loss, b.mean_loss, 1e-5f);
}

TEST(Evaluate, EmptyDatasetReturnsZeros) {
  data::Dataset empty;
  empty.num_classes = 3;
  nn::Sequential model = nn::make_mlp(2, {}, 3);
  const EvalResult res = evaluate(model, model.get_params(), empty);
  EXPECT_FLOAT_EQ(res.accuracy, 0.0f);
  EXPECT_EQ(res.per_class_accuracy.size(), 3u);
}

}  // namespace
}  // namespace fedwcm::fl
