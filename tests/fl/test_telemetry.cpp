// WatchdogObserver + Simulation integration: trips, abort-with-checkpoint,
// flight dumps, event publication, and read-only guarantees.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "fedwcm/core/checkpoint.hpp"
#include "fedwcm/fl/diagnostics.hpp"
#include "fedwcm/fl/registry.hpp"
#include "fedwcm/fl/telemetry.hpp"
#include "fedwcm/obs/event.hpp"
#include "fedwcm/obs/json.hpp"
#include "fl_test_util.hpp"

namespace fedwcm::fl {
namespace {

using testutil::make_world;

/// The global bus enabled for one test, restored on exit (tests share the
/// process-wide bus the Simulation publishes to).
struct ScopedGlobalBus {
  ScopedGlobalBus() {
    obs::events().clear();
    obs::events().set_enabled(true);
  }
  ~ScopedGlobalBus() {
    obs::events().set_enabled(false);
    obs::events().clear();
  }
};

/// A watchdog armed to trip on the first evaluated round: no model reaches
/// perfect recall on every class this early.
obs::WatchdogConfig trip_early_config() {
  obs::WatchdogConfig config;
  config.recall_floor = 1.0;
  config.recall_window = 1;
  config.recall_warmup = 0;
  return config;
}

TEST(WatchdogObserver, TripsAndRaisesStopFlagWhenAborting) {
  auto w = make_world();
  Simulation sim = w.make_simulation();
  auto watchdog = std::make_shared<WatchdogObserver>(trip_early_config());
  watchdog->set_abort_on_trip(true);
  std::vector<obs::Alarm> alarms;
  watchdog->set_on_trip([&](const obs::Alarm& a) { alarms.push_back(a); });
  sim.add_observer(watchdog);
  sim.set_stop_flag(watchdog->stop_flag());

  auto algorithm = make_algorithm("fedwcm");
  const SimulationResult result = sim.run(*algorithm);

  EXPECT_TRUE(result.aborted);
  EXPECT_TRUE(watchdog->watchdog().tripped());
  ASSERT_EQ(alarms.size(), 1u);  // The abort stops further observations.
  EXPECT_EQ(alarms[0].rule, "recall_collapse");
  // Aborted on the first evaluated round (round 0, eval_every=2): only that
  // round is in the history.
  ASSERT_EQ(result.history.size(), 1u);
  EXPECT_EQ(result.history[0].round, 0u);
}

TEST(WatchdogObserver, NonAbortingWatchdogKeepsTheRunGoingAndIsReadOnly) {
  auto w = make_world();
  Simulation plain = w.make_simulation();
  auto a1 = make_algorithm("fedwcm");
  const SimulationResult baseline = plain.run(*a1);

  Simulation watched = w.make_simulation();
  auto watchdog = std::make_shared<WatchdogObserver>(trip_early_config());
  watched.add_observer(std::make_shared<DiagnosticsObserver>());
  watched.add_observer(watchdog);
  watched.set_stop_flag(watchdog->stop_flag());  // Never raised: no abort.
  auto a2 = make_algorithm("fedwcm");
  const SimulationResult result = watched.run(*a2);

  EXPECT_FALSE(result.aborted);
  EXPECT_TRUE(watchdog->watchdog().tripped());
  EXPECT_GT(watchdog->watchdog().alarms().size(), 1u);
  // Bitwise identical trajectory: the watchdog observed, never steered.
  ASSERT_EQ(result.final_params.size(), baseline.final_params.size());
  for (std::size_t i = 0; i < result.final_params.size(); ++i)
    ASSERT_EQ(result.final_params[i], baseline.final_params[i]) << i;
}

TEST(WatchdogObserver, AbortWritesAFinalCheckpoint) {
  const std::string path = testing::TempDir() + "/watchdog_abort.ckpt";
  std::remove(path.c_str());
  auto w = make_world();
  Simulation sim = w.make_simulation();
  // every=1000: the periodic path never fires; only the abort writes.
  sim.set_checkpointing({path, 1000, false});
  auto watchdog = std::make_shared<WatchdogObserver>(trip_early_config());
  watchdog->set_abort_on_trip(true);
  sim.add_observer(watchdog);
  sim.set_stop_flag(watchdog->stop_flag());
  auto algorithm = make_algorithm("fedavg");
  const SimulationResult result = sim.run(*algorithm);
  EXPECT_TRUE(result.aborted);
  EXPECT_TRUE(core::checkpoint_exists(path));
}

TEST(WatchdogObserver, SpreadRuleSeesPopulationQuantiles) {
  // An absurd floor (every real ratio p95/p50 >= 1 is "collapsed") trips on
  // the first populated round — but only when population telemetry feeds the
  // watchdog a measured spread.
  obs::WatchdogConfig config;
  config.spread_floor = 1000.0;
  config.spread_window = 1;

  auto w = make_world();
  w.config.population_telemetry = true;
  Simulation sim = w.make_simulation();
  auto watchdog = std::make_shared<WatchdogObserver>(config);
  sim.add_observer(watchdog);
  auto alg = make_algorithm("fedwcm");
  sim.run(*alg);
  ASSERT_TRUE(watchdog->watchdog().tripped());
  EXPECT_EQ(watchdog->watchdog().alarms().front().rule, "spread_collapse");

  // Telemetry off: norm_spread stays unmeasured and the rule never fires.
  auto w_off = make_world();
  Simulation off_sim = w_off.make_simulation();
  auto off_watchdog = std::make_shared<WatchdogObserver>(config);
  off_sim.add_observer(off_watchdog);
  auto off_alg = make_algorithm("fedwcm");
  off_sim.run(*off_alg);
  EXPECT_FALSE(off_watchdog->watchdog().tripped());
}

TEST(WatchdogObserver, TripPublishesAlarmEventAndDumpsFlight) {
  ScopedGlobalBus bus_guard;
  const std::string flight_path = testing::TempDir() + "/watchdog_flight.json";
  std::remove(flight_path.c_str());

  auto w = make_world();
  Simulation sim = w.make_simulation();
  obs::FlightRecorder flight(obs::events(), flight_path);
  auto watchdog = std::make_shared<WatchdogObserver>(trip_early_config());
  watchdog->set_abort_on_trip(true);
  watchdog->set_flight_recorder(&flight);
  sim.add_observer(watchdog);
  sim.set_stop_flag(watchdog->stop_flag());
  auto algorithm = make_algorithm("fedwcm");
  const SimulationResult result = sim.run(*algorithm);
  ASSERT_TRUE(result.aborted);

  // The bus saw the run unfold and the alarm itself.
  bool saw_alarm = false, saw_round_begin = false, saw_upload = false;
  for (const obs::Event& e : obs::events().snapshot()) {
    saw_alarm |= e.kind == obs::EventKind::kWatchdogAlarm;
    saw_round_begin |= e.kind == obs::EventKind::kRoundBegin;
    saw_upload |= e.kind == obs::EventKind::kClientUpload;
  }
  EXPECT_TRUE(saw_alarm);
  EXPECT_TRUE(saw_round_begin);
  EXPECT_TRUE(saw_upload);

  // flight.json exists and contains the triggering alarm event.
  std::ifstream is(flight_path);
  ASSERT_TRUE(is.good());
  std::stringstream buffer;
  buffer << is.rdbuf();
  obs::json::Value doc;
  std::string error;
  ASSERT_TRUE(obs::json::parse(buffer.str(), doc, error)) << error;
  EXPECT_EQ(doc.find("reason")->as_string(), "watchdog: recall_collapse");
  bool dumped_alarm = false;
  for (const auto& e : doc.find("events")->as_array())
    if (e.find("kind")->as_string() == "watchdog_alarm") dumped_alarm = true;
  EXPECT_TRUE(dumped_alarm);
}

TEST(Simulation, PublishesLifecycleEvents) {
  ScopedGlobalBus bus_guard;
  auto w = make_world();
  w.config.rounds = 4;
  Simulation sim = w.make_simulation();
  auto algorithm = make_algorithm("fedavg");
  sim.run(*algorithm);

  const std::vector<obs::Event> events = obs::events().snapshot();
  ASSERT_FALSE(events.empty());
  EXPECT_EQ(events.front().kind, obs::EventKind::kRunBegin);
  EXPECT_EQ(events.front().detail, "fedavg");
  EXPECT_EQ(events.back().kind, obs::EventKind::kRunEnd);
  std::size_t round_begins = 0, round_ends = 0, evaluates = 0;
  std::size_t eval_begins = 0, eval_ends = 0;
  for (const obs::Event& e : events) {
    round_begins += e.kind == obs::EventKind::kRoundBegin;
    round_ends += e.kind == obs::EventKind::kRoundEnd;
    evaluates += e.kind == obs::EventKind::kEvaluate;
    eval_begins += e.kind == obs::EventKind::kEvalBegin;
    if (e.kind == obs::EventKind::kEvalEnd) {
      ++eval_ends;
      EXPECT_GE(e.value, 0.0);  // Eval wall time in ms.
    }
  }
  EXPECT_EQ(round_begins, 4u);
  EXPECT_EQ(round_ends, 4u);
  EXPECT_EQ(evaluates, 3u);  // Rounds 0 and 2 (eval_every=2) + final round 3.
  // Every evaluation is bracketed by an eval_begin / eval_end pair.
  EXPECT_EQ(eval_begins, evaluates);
  EXPECT_EQ(eval_ends, evaluates);
}

TEST(Simulation, PublishesFaultEvents) {
  ScopedGlobalBus bus_guard;
  auto w = make_world();
  w.config.rounds = 6;
  w.config.faults.drop_prob = 0.5;
  w.config.faults.corrupt_prob = 0.3;
  Simulation sim = w.make_simulation();
  auto algorithm = make_algorithm("fedavg");
  const SimulationResult result = sim.run(*algorithm);
  ASSERT_GT(result.faults_dropped + result.faults_rejected, 0u);

  std::size_t fault_events = 0, rejected_uploads = 0;
  for (const obs::Event& e : obs::events().snapshot()) {
    fault_events += e.kind == obs::EventKind::kFaultInjected;
    rejected_uploads += e.kind == obs::EventKind::kClientUpload &&
                        e.detail == "rejected";
  }
  EXPECT_EQ(fault_events, result.faults_dropped + result.faults_rejected +
                              result.faults_straggled);
  EXPECT_EQ(rejected_uploads, result.faults_rejected);
}

}  // namespace
}  // namespace fedwcm::fl
