// FlConfig::sampled_per_round boundary behavior: at least one client, never
// more than the population, exact at huge populations.
#include <gtest/gtest.h>

#include "fedwcm/fl/types.hpp"

namespace fedwcm::fl {
namespace {

FlConfig cfg(std::size_t clients, double participation) {
  FlConfig c;
  c.num_clients = clients;
  c.participation = participation;
  return c;
}

TEST(CohortSize, ZeroParticipationStillSamplesOne) {
  EXPECT_EQ(cfg(30, 0.0).sampled_per_round(), 1u);
  EXPECT_EQ(cfg(1u << 20, 0.0).sampled_per_round(), 1u);
}

TEST(CohortSize, OneOverNSamplesExactlyOne) {
  for (std::size_t n : {std::size_t(3), std::size_t(1000),
                        std::size_t(1) << 20, std::size_t(1) << 32}) {
    EXPECT_EQ(cfg(n, 1.0 / double(n)).sampled_per_round(), 1u) << n;
  }
}

TEST(CohortSize, FullParticipationSamplesAll) {
  for (std::size_t n : {std::size_t(1), std::size_t(30),
                        std::size_t(1) << 32}) {
    EXPECT_EQ(cfg(n, 1.0).sampled_per_round(), n) << n;
  }
}

TEST(CohortSize, NeverExceedsPopulation) {
  // Even p slightly above 1 (a config bug) clamps to n.
  EXPECT_EQ(cfg(30, 1.0000001).sampled_per_round(), 30u);
}

TEST(CohortSize, MillionClientFractions) {
  EXPECT_EQ(cfg(1000000, 0.0002).sampled_per_round(), 200u);
  EXPECT_EQ(cfg(1000000, 0.001).sampled_per_round(), 1000u);
  // 2^32 clients at 1e-9 participation: ~4.29 clients -> 4 exactly.
  EXPECT_EQ(cfg(std::size_t(1) << 32, 1e-9).sampled_per_round(), 4u);
}

TEST(CohortSize, MatchesLegacyFormulaForTestConfigs) {
  // The configs historical tests run with — the rewrite must not shift any
  // cohort size, or every determinism test would see a new trajectory.
  for (std::size_t n : {8u, 20u, 30u, 100u}) {
    for (double p : {0.1, 0.25, 0.5, 1.0}) {
      const auto legacy = std::size_t(double(n) * p + 0.5);
      const auto expected =
          legacy == 0 ? 1u : (legacy > n ? n : legacy);
      EXPECT_EQ(cfg(n, p).sampled_per_round(), expected)
          << "n=" << n << " p=" << p;
    }
  }
}

}  // namespace
}  // namespace fedwcm::fl
