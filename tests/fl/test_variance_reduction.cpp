// SCAFFOLD and FedDyn: control-variate and dynamic-regularization state
// machines, plus end-to-end learning.
#include <gtest/gtest.h>

#include "fedwcm/fl/algorithms/feddyn.hpp"
#include "fedwcm/fl/algorithms/scaffold.hpp"
#include "fl_test_util.hpp"

namespace fedwcm::fl {
namespace {

using testutil::make_world;

TEST(Scaffold, VariatesStartAtZeroAndUpdate) {
  auto w = make_world();
  w.config.local_epochs = 1;
  Simulation sim = w.make_simulation();
  const FlContext& ctx = sim.context();
  Scaffold alg;
  alg.initialize(ctx);
  EXPECT_FLOAT_EQ(core::pv::l2_norm(alg.server_variate()), 0.0f);

  nn::Sequential init = ctx.model_factory();
  core::Rng rng(9);
  init.init_params(rng);
  const ParamVector start = init.get_params();
  Worker worker(ctx.model_factory);
  LocalResult res = alg.local_update(0, start, 0, worker);
  // aux = c_i+ - c_i must be the step-normalized delta on round 0 (c = c_i = 0).
  ASSERT_EQ(res.aux.size(), ctx.param_count);
  const float inv = 1.0f / (float(res.num_steps) * ctx.config->local_lr);
  for (std::size_t i = 0; i < res.aux.size(); ++i)
    ASSERT_NEAR(res.aux[i], res.delta[i] * inv, 1e-5f);

  ParamVector global = start;
  std::vector<LocalResult> results{std::move(res)};
  alg.aggregate(results, 0, global);
  // Server variate moved by |P|/N * mean(aux) != 0.
  EXPECT_GT(core::pv::l2_norm(alg.server_variate()), 0.0f);
}

TEST(Scaffold, FirstRoundLocalStepMatchesPlainSgd) {
  // With all variates zero, v = g: identical to FedAvg's local pass.
  auto w = make_world();
  w.config.local_epochs = 1;
  Simulation sim = w.make_simulation();
  const FlContext& ctx = sim.context();
  nn::Sequential init = ctx.model_factory();
  core::Rng rng(10);
  init.init_params(rng);
  const ParamVector start = init.get_params();

  Scaffold alg;
  alg.initialize(ctx);
  Worker worker(ctx.model_factory);
  const LocalResult a = alg.local_update(1, start, 0, worker);

  nn::CrossEntropyLoss loss;
  const LocalResult b = run_local_sgd(
      ctx, worker, 1, start, 0, ctx.config->local_lr, loss,
      [](const ParamVector& g, const ParamVector&, ParamVector& v) { v = g; });
  for (std::size_t i = 0; i < a.delta.size(); ++i)
    ASSERT_NEAR(a.delta[i], b.delta[i], 1e-6f);
}

TEST(Scaffold, LearnsAboveChance) {
  auto w = make_world(1.0);
  w.config.rounds = 12;
  Simulation sim = w.make_simulation();
  Scaffold alg;
  const SimulationResult res = sim.run(alg);
  EXPECT_GT(res.final_accuracy, 1.5f / 6.0f);
}

TEST(FedDyn, CorrectionStateEvolves) {
  auto w = make_world();
  w.config.local_epochs = 1;
  Simulation sim = w.make_simulation();
  const FlContext& ctx = sim.context();
  FedDyn alg(0.1f);
  alg.initialize(ctx);
  EXPECT_FLOAT_EQ(alg.momentum_norm(), 0.0f);  // h starts at zero

  nn::Sequential init = ctx.model_factory();
  core::Rng rng(11);
  init.init_params(rng);
  ParamVector global = init.get_params();
  Worker worker(ctx.model_factory);
  std::vector<LocalResult> results{alg.local_update(0, global, 0, worker)};
  alg.aggregate(results, 0, global);
  EXPECT_GT(alg.momentum_norm(), 0.0f);  // h updated
}

TEST(FedDyn, ServerStepIncludesStateTerm) {
  auto w = make_world();
  Simulation sim = w.make_simulation();
  const FlContext& ctx = sim.context();
  const float mu = 0.5f;
  FedDyn alg(mu);
  alg.initialize(ctx);
  const std::size_t dim = ctx.param_count;
  LocalResult r;
  r.client = 0;
  r.num_samples = 10;
  r.num_steps = 2;
  r.delta.assign(dim, 1.0f);  // x_B - x_r = -1 everywhere
  ParamVector global(dim, 0.0f);
  std::vector<LocalResult> results{r};
  alg.aggregate(results, 0, global);
  // h = mu*(1/8)*1 = 0.0625; x = 0 - 1 - h/mu = -1.125.
  EXPECT_NEAR(global[0], -1.0f - (mu * (1.0f / 8.0f)) / mu, 1e-5f);
}

TEST(FedDyn, LearnsAboveChance) {
  auto w = make_world(1.0);
  w.config.rounds = 12;
  Simulation sim = w.make_simulation();
  FedDyn alg(0.05f);
  const SimulationResult res = sim.run(alg);
  EXPECT_GT(res.final_accuracy, 1.5f / 6.0f);
}

}  // namespace
}  // namespace fedwcm::fl
