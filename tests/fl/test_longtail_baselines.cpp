// FedGraB and BalanceFL (simplified reimplementations): gradient balancer
// semantics, head-layout discovery, absent-class gradient masking.
#include <gtest/gtest.h>

#include "fedwcm/fl/algorithms/balancefl.hpp"
#include "fedwcm/fl/algorithms/fedgrab.hpp"
#include "fedwcm/nn/models.hpp"
#include "fl_test_util.hpp"

namespace fedwcm::fl {
namespace {

using testutil::make_world;

TEST(ColumnScaledLoss, ScalesGradientColumns) {
  ColumnScaledLoss loss(std::make_unique<nn::CrossEntropyLoss>(), {2.0f, 0.5f});
  core::Matrix logits(1, 2, std::vector<float>{0.0f, 0.0f});
  core::Matrix d;
  const std::vector<std::size_t> y{0};
  loss.compute(logits, y, d);
  // Plain CE gradient would be [-0.5, 0.5]; scaled: [-1.0, 0.25].
  EXPECT_NEAR(d(0, 0), -1.0f, 1e-5f);
  EXPECT_NEAR(d(0, 1), 0.25f, 1e-5f);
}

TEST(FedGraB, MultipliersBoostTailClasses) {
  auto w = make_world(/*imbalance=*/0.05);
  Simulation sim = w.make_simulation();
  FedGraB alg(0.5f);
  alg.initialize(sim.context());
  const auto& m = alg.multipliers();
  ASSERT_EQ(m.size(), sim.context().num_classes());
  // Tail multiplier exceeds head multiplier; normalized to mean 1.
  EXPECT_GT(m.back(), m.front());
  float mean = 0.0f;
  for (float v : m) mean += v;
  EXPECT_NEAR(mean / float(m.size()), 1.0f, 1e-4f);
}

TEST(FedGraB, BalancedDataGivesUniformMultipliers) {
  auto w = make_world(1.0);
  Simulation sim = w.make_simulation();
  FedGraB alg;
  alg.initialize(sim.context());
  for (float v : alg.multipliers()) EXPECT_NEAR(v, 1.0f, 0.15f);
}

TEST(FedGraB, SelfAdjustmentKeepsGammaBounded) {
  auto w = make_world(0.05);
  w.config.rounds = 8;
  Simulation sim = w.make_simulation();
  FedGraB alg(0.5f);
  const SimulationResult res = sim.run(alg);
  EXPECT_GE(alg.gamma(), 0.1f);
  EXPECT_LE(alg.gamma(), 1.0f);
  EXPECT_GT(res.final_accuracy, 1.0f / 6.0f);
}

TEST(HeadLayout, FindsLastLinearLayer) {
  const nn::Sequential model = nn::make_mlp(12, {16, 8}, 6);
  const HeadLayout head = find_head_layout(model);
  EXPECT_EQ(head.in_features, 8u);
  EXPECT_EQ(head.out_features, 6u);
  EXPECT_TRUE(head.has_bias);
  // Head occupies the tail of the flat vector.
  EXPECT_EQ(head.weight_offset + 8 * 6 + 6, model.param_count());
  EXPECT_EQ(head.bias_offset, head.weight_offset + 8 * 6);
}

TEST(HeadLayout, ThrowsWithoutLinear) {
  nn::Sequential model;
  model.add(std::make_unique<nn::ReLU>());
  EXPECT_THROW(find_head_layout(model), std::invalid_argument);
}

TEST(MaskAbsentClasses, ZeroesOnlyMissingColumns) {
  const nn::Sequential model = nn::make_mlp(4, {3}, 3);
  const HeadLayout head = find_head_layout(model);
  core::ParamVector grad(model.param_count(), 1.0f);
  const std::vector<char> present{1, 0, 1};
  mask_absent_class_gradients(grad, head, present);
  // Column 1 of the head weight and bias[1] must be zero; others untouched.
  for (std::size_t r = 0; r < head.in_features; ++r) {
    EXPECT_FLOAT_EQ(grad[head.weight_offset + r * 3 + 0], 1.0f);
    EXPECT_FLOAT_EQ(grad[head.weight_offset + r * 3 + 1], 0.0f);
    EXPECT_FLOAT_EQ(grad[head.weight_offset + r * 3 + 2], 1.0f);
  }
  EXPECT_FLOAT_EQ(grad[head.bias_offset + 1], 0.0f);
  EXPECT_FLOAT_EQ(grad[head.bias_offset + 0], 1.0f);
  // Pre-head parameters untouched.
  for (std::size_t i = 0; i < head.weight_offset; ++i)
    EXPECT_FLOAT_EQ(grad[i], 1.0f);
}

TEST(BalanceFL, AbsentClassHeadColumnsFrozenDuringLocalTraining) {
  auto w = make_world(/*imbalance=*/0.05, /*beta=*/0.05);
  Simulation sim = w.make_simulation();
  const FlContext& ctx = sim.context();

  // Find a client missing at least one class.
  std::size_t client = SIZE_MAX, missing = SIZE_MAX;
  for (std::size_t k = 0; k < ctx.num_clients() && client == SIZE_MAX; ++k)
    for (std::size_t c = 0; c < ctx.num_classes(); ++c)
      if (ctx.client_size(k) > 0 && ctx.client_class_counts[k][c] == 0) {
        client = k;
        missing = c;
        break;
      }
  ASSERT_NE(client, SIZE_MAX) << "test world should have class-missing clients";

  BalanceFL alg;
  alg.initialize(ctx);
  nn::Sequential init = ctx.model_factory();
  core::Rng rng(15);
  init.init_params(rng);
  const ParamVector start = init.get_params();
  Worker worker(ctx.model_factory);
  const LocalResult res = alg.local_update(client, start, 0, worker);

  const HeadLayout head = find_head_layout(init);
  for (std::size_t r = 0; r < head.in_features; ++r)
    EXPECT_FLOAT_EQ(
        res.delta[head.weight_offset + r * head.out_features + missing], 0.0f);
  EXPECT_FLOAT_EQ(res.delta[head.bias_offset + missing], 0.0f);
  // Some other parameters must have moved.
  EXPECT_GT(core::pv::l2_norm(res.delta), 0.0f);
}

TEST(BalanceFL, FullRunLearns) {
  auto w = make_world(0.1);
  w.config.rounds = 10;
  Simulation sim = w.make_simulation();
  BalanceFL alg;
  const SimulationResult res = sim.run(alg);
  EXPECT_GT(res.final_accuracy, 1.3f / 6.0f);
}

}  // namespace
}  // namespace fedwcm::fl
