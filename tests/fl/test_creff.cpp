// CReFF (simplified): prototype gathering and balanced head retraining.
#include <gtest/gtest.h>

#include "fedwcm/fl/algorithms/balancefl.hpp"
#include "fedwcm/fl/algorithms/creff.hpp"
#include "fl_test_util.hpp"

namespace fedwcm::fl {
namespace {

using testutil::make_world;

TEST(CReFF, PrototypesGatheredOnRetrainRounds) {
  auto w = make_world(/*imbalance=*/0.1);
  w.config.rounds = 5;
  Simulation sim = w.make_simulation();
  CreffOptions opt;
  opt.retrain_every = 5;  // triggers on round 4 (last) only
  CReFF alg(opt);
  const SimulationResult res = sim.run(alg);
  EXPECT_GT(res.final_accuracy, 1.0f / 6.0f);
  // Prototypes were populated on the final retraining round: the matrix must
  // contain non-zero rows for the classes the sampled clients held.
  float norm = 0.0f;
  for (float v : alg.prototypes().span()) norm += v * v;
  EXPECT_GT(norm, 0.0f);
  EXPECT_EQ(alg.prototypes().rows(), sim.context().num_classes());
}

TEST(CReFF, HeadRetrainingOnlyTouchesHeadParameters) {
  auto w = make_world(/*imbalance=*/0.1);
  w.config.rounds = 1;  // one round: FedAvg step + retraining on the way out
  Simulation sim = w.make_simulation();

  // Reference: identical FedAvg run (same seed/init).
  Simulation ref_sim = w.make_simulation();
  FedAvg fedavg;
  const SimulationResult ref = ref_sim.run(fedavg);

  CreffOptions opt;
  opt.retrain_every = 1;
  opt.retrain_steps = 10;
  CReFF alg(opt);
  const SimulationResult res = sim.run(alg);

  const nn::Sequential probe = w.default_factory()();
  const HeadLayout head = find_head_layout(probe);
  // Backbone (pre-head) parameters identical to plain FedAvg...
  for (std::size_t i = 0; i < head.weight_offset; ++i)
    ASSERT_FLOAT_EQ(res.final_params[i], ref.final_params[i]) << i;
  // ...while the head moved (retraining happened).
  float diff = 0.0f;
  for (std::size_t i = head.weight_offset; i < res.final_params.size(); ++i)
    diff = std::max(diff, std::abs(res.final_params[i] - ref.final_params[i]));
  EXPECT_GT(diff, 1e-6f);
}

TEST(CReFF, LearnsUnderLongTail) {
  auto w = make_world(/*imbalance=*/0.05);
  w.config.rounds = 12;
  w.config.local_epochs = 3;
  Simulation sim = w.make_simulation();
  CReFF alg;
  const SimulationResult res = sim.run(alg);
  EXPECT_GT(res.final_accuracy, 1.5f / 6.0f);
}

}  // namespace
}  // namespace fedwcm::fl
