// Lazy-materialization engine gates: a lazy simulation is bitwise identical
// to an eager simulation over the materialized partition (the correctness
// contract of docs/SCALING.md), checkpoint resume works without any
// materialized clients, streaming aggregation matches the buffered path to
// float tolerance, and availability thinning is deterministic.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <memory>
#include <optional>

#include "fedwcm/core/checkpoint.hpp"
#include "fedwcm/data/lazy.hpp"
#include "fedwcm/data/longtail.hpp"
#include "fedwcm/data/synthetic.hpp"
#include "fedwcm/fl/checkpoint.hpp"
#include "fedwcm/fl/registry.hpp"
#include "fl_test_util.hpp"

namespace fedwcm::fl {
namespace {

/// 100-client lazy world (the issue's correctness gate size): small data,
/// fixed per-client quota so local steps are non-trivial but fast.
struct LazyWorld {
  data::TrainTest data;
  std::vector<std::size_t> subset;
  std::optional<data::LazyPartition> lazy;
  FlConfig config;

  nn::ModelFactory factory() const {
    return nn::mlp_factory(data.train.dim(), {16}, data.train.num_classes);
  }
  Simulation make_lazy_sim() const {
    return Simulation(config, data.train, data.test, *lazy, factory(),
                      cross_entropy_loss_factory());
  }
  Simulation make_eager_sim(const data::Partition& partition) const {
    return Simulation(config, data.train, data.test, partition, factory(),
                      cross_entropy_loss_factory());
  }
};

LazyWorld make_lazy_world(std::size_t clients = 100) {
  LazyWorld w;
  data::SyntheticSpec spec;
  spec.name = "lazy_world";
  spec.num_classes = 6;
  spec.input_dim = 12;
  spec.subclusters = 2;
  spec.train_per_class = 60;
  spec.test_per_class = 20;
  spec.class_separation = 4.0f;
  spec.noise = 0.8f;
  w.data = data::generate(spec, 42);
  w.subset = data::longtail_subsample(w.data.train, 0.1, 42);
  data::LazySpec lspec;
  lspec.num_clients = clients;
  lspec.beta = 0.1;
  lspec.seed = 42;
  lspec.samples_per_client = 8;
  w.lazy.emplace(w.data.train, w.subset, lspec);
  w.config.num_clients = clients;
  w.config.participation = 0.2;
  w.config.rounds = 8;
  w.config.local_epochs = 2;
  w.config.batch_size = 16;
  w.config.seed = 42;
  w.config.eval_every = 2;
  w.config.threads = 2;
  return w;
}

void expect_same_run(const SimulationResult& a, const SimulationResult& b,
                     const std::string& tag) {
  EXPECT_EQ(a.final_params, b.final_params) << tag;
  EXPECT_EQ(a.final_accuracy, b.final_accuracy) << tag;
  EXPECT_EQ(a.best_accuracy, b.best_accuracy) << tag;
  EXPECT_EQ(a.per_class_accuracy, b.per_class_accuracy) << tag;
  EXPECT_EQ(a.faults_dropped, b.faults_dropped) << tag;
  EXPECT_EQ(a.faults_straggled, b.faults_straggled) << tag;
  ASSERT_EQ(a.history.size(), b.history.size()) << tag;
  for (std::size_t i = 0; i < a.history.size(); ++i) {
    EXPECT_EQ(a.history[i].test_accuracy, b.history[i].test_accuracy)
        << tag << " round " << a.history[i].round;
    EXPECT_EQ(a.history[i].train_loss, b.history[i].train_loss)
        << tag << " round " << a.history[i].round;
    EXPECT_EQ(a.history[i].alpha, b.history[i].alpha) << tag;
    EXPECT_EQ(a.history[i].momentum_norm, b.history[i].momentum_norm) << tag;
    EXPECT_EQ(a.history[i].bytes_up, b.history[i].bytes_up) << tag;
  }
}

// The tentpole correctness gate: a lazy run must be bitwise identical (final
// params AND every recorded artifact) to an eager run over the exact same
// clients — materialize() hands the eager path the lazy deal.
TEST(LazySimulation, BitwiseEqualsEagerOverMaterializedPartition) {
  for (const char* name : {"fedavg", "fedcm", "fedwcm"}) {
    auto w = make_lazy_world();
    const data::Partition eager_partition = w.lazy->materialize();

    Simulation lazy_sim = w.make_lazy_sim();
    auto lazy_alg = make_algorithm(name);
    const SimulationResult lazy_result = lazy_sim.run(*lazy_alg);

    Simulation eager_sim = w.make_eager_sim(eager_partition);
    auto eager_alg = make_algorithm(name);
    const SimulationResult eager_result = eager_sim.run(*eager_alg);

    expect_same_run(lazy_result, eager_result, name);
  }
}

struct CrashAtRound final : RoundObserver {
  std::size_t crash_round;
  explicit CrashAtRound(std::size_t r) : crash_round(r) {}
  void on_round_end(const RoundRecord& rec) override {
    if (rec.round == crash_round) throw std::runtime_error("injected crash");
  }
};

SimulationResult lazy_crash_then_resume(const LazyWorld& w,
                                        const std::string& alg_name,
                                        const std::string& path) {
  std::remove(path.c_str());
  {
    Simulation sim = w.make_lazy_sim();
    sim.set_checkpointing({path, 5, false});
    sim.add_observer(std::make_shared<CrashAtRound>(6));
    auto alg = make_algorithm(alg_name);
    EXPECT_THROW(sim.run(*alg), std::runtime_error);
  }
  EXPECT_TRUE(core::checkpoint_exists(path));

  Simulation sim = w.make_lazy_sim();
  sim.set_checkpointing({path, 5, true});
  auto alg = make_algorithm(alg_name);
  const SimulationResult resumed = sim.run(*alg);
  std::remove(path.c_str());
  return resumed;
}

// Resume needs no materialized clients: the checkpoint stores only round +
// params + algorithm state, and every lazy client re-derives identically.
TEST(LazySimulation, ResumeEqualsUninterrupted) {
  for (const char* name : {"fedavg", "fedcm", "fedwcm"}) {
    auto w = make_lazy_world();
    Simulation base = w.make_lazy_sim();
    auto base_alg = make_algorithm(name);
    const SimulationResult expected = base.run(*base_alg);

    const std::string path =
        testing::TempDir() + "/fedwcm_lazy_resume_" + name + ".ckpt";
    const SimulationResult resumed = lazy_crash_then_resume(w, name, path);
    expect_same_run(resumed, expected, std::string("lazy+") + name);
  }
}

TEST(LazySimulation, ResumeEqualsUninterruptedUnderFaults) {
  auto w = make_lazy_world();
  w.config.faults.drop_prob = 0.25;
  w.config.faults.straggler_prob = 0.25;
  Simulation base = w.make_lazy_sim();
  auto base_alg = make_algorithm("fedcm");
  const SimulationResult expected = base.run(*base_alg);

  const std::string path = testing::TempDir() + "/fedwcm_lazy_faults.ckpt";
  const SimulationResult resumed = lazy_crash_then_resume(w, "fedcm", path);
  expect_same_run(resumed, expected, "lazy+fedcm+faults");
}

// Streaming is algebraically the same survivor-renormalized mean, so a
// single round must agree with the buffered path to float rounding noise;
// and the streaming path must be deterministic in its own right.
TEST(LazySimulation, StreamingMatchesBufferedWithinTolerance) {
  for (const char* name : {"fedavg", "fedcm", "fedwcm"}) {
    auto w = make_lazy_world();
    w.config.rounds = 1;
    w.config.eval_every = 1;
    Simulation buffered_sim = w.make_lazy_sim();
    auto buffered_alg = make_algorithm(name);
    const SimulationResult buffered = buffered_sim.run(*buffered_alg);

    w.config.stream_aggregation = true;
    Simulation stream_sim = w.make_lazy_sim();
    auto stream_alg = make_algorithm(name);
    const SimulationResult streamed = stream_sim.run(*stream_alg);

    Simulation again_sim = w.make_lazy_sim();
    auto again_alg = make_algorithm(name);
    const SimulationResult again = again_sim.run(*again_alg);
    expect_same_run(streamed, again, std::string("stream determinism ") + name);

    ASSERT_EQ(streamed.final_params.size(), buffered.final_params.size());
    for (std::size_t j = 0; j < buffered.final_params.size(); ++j)
      EXPECT_NEAR(streamed.final_params[j], buffered.final_params[j], 1e-5f)
          << name << " param " << j;
  }
}

TEST(LazySimulation, AvailabilityThinningIsDeterministic) {
  auto w = make_lazy_world();
  w.config.availability = 0.6;
  Simulation a_sim = w.make_lazy_sim();
  auto a_alg = make_algorithm("fedavg");
  const SimulationResult a = a_sim.run(*a_alg);
  Simulation b_sim = w.make_lazy_sim();
  auto b_alg = make_algorithm("fedavg");
  const SimulationResult b = b_sim.run(*b_alg);
  expect_same_run(a, b, "availability determinism");

  // Thinning changes which clients are drawable, so the trajectory departs
  // from the full-availability one.
  w.config.availability = 1.0;
  Simulation full_sim = w.make_lazy_sim();
  auto full_alg = make_algorithm("fedavg");
  const SimulationResult full = full_sim.run(*full_alg);
  EXPECT_NE(a.final_params, full.final_params);
}

// Both knobs shape the trajectory, so both must invalidate checkpoints.
TEST(LazySimulation, StreamAndAvailabilityCoveredByFingerprint) {
  auto w = make_lazy_world();
  const std::string base = config_fingerprint(w.config, 100, "fedwcm");
  auto w2 = make_lazy_world();
  w2.config.stream_aggregation = true;
  EXPECT_NE(config_fingerprint(w2.config, 100, "fedwcm"), base);
  auto w3 = make_lazy_world();
  w3.config.availability = 0.5;
  EXPECT_NE(config_fingerprint(w3.config, 100, "fedwcm"), base);
}

}  // namespace
}  // namespace fedwcm::fl
