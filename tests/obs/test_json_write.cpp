// JSON writing helpers: non-finite doubles must serialize as null (JSON has
// no NaN/Inf literal), strings must escape, and dump(parse(dump(v))) must be
// an identity for everything the repo emits.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <limits>
#include <sstream>

#include "fedwcm/obs/json.hpp"
#include "fedwcm/obs/metrics.hpp"

namespace fedwcm::obs::json {
namespace {

TEST(JsonWrite, FiniteNumbersRoundTripExactly) {
  for (double v : {0.0, 1.0, -1.0, 0.5, 1.0 / 3.0, 1e-30, 1e30, 123456789.0,
                   -0.8066666722297668, 3.141592653589793}) {
    const std::string text = number_to_string(v);
    Value parsed;
    std::string error;
    ASSERT_TRUE(parse(text, parsed, error)) << text << ": " << error;
    ASSERT_TRUE(parsed.is_number()) << text;
    EXPECT_EQ(parsed.as_number(), v) << text;
  }
}

TEST(JsonWrite, IntegersPrintWithoutExponent) {
  EXPECT_EQ(number_to_string(42.0), "42");
  EXPECT_EQ(number_to_string(-7.0), "-7");
  EXPECT_EQ(number_to_string(0.0), "0");
}

TEST(JsonWrite, NonFiniteBecomesNull) {
  EXPECT_EQ(number_to_string(std::numeric_limits<double>::quiet_NaN()), "null");
  EXPECT_EQ(number_to_string(std::numeric_limits<double>::infinity()), "null");
  EXPECT_EQ(number_to_string(-std::numeric_limits<double>::infinity()), "null");
  // And the resulting token parses as JSON null, so a consumer sees a typed
  // "missing value" instead of a parse error.
  Value parsed;
  std::string error;
  ASSERT_TRUE(parse(number_to_string(NAN), parsed, error)) << error;
  EXPECT_TRUE(parsed.is_null());
}

TEST(JsonWrite, FloatOverloadRoundTripsThroughFloat) {
  // A stored float must print as its own shortest decimal, not the 17-digit
  // expansion of its double promotion (0.9f is not 0.9 as a double).
  EXPECT_EQ(number_to_string(0.9f), "0.9");
  EXPECT_EQ(number_to_string(0.5f), "0.5");
  EXPECT_EQ(number_to_string(42.0f), "42");
  EXPECT_EQ(number_to_string(std::numeric_limits<float>::quiet_NaN()), "null");
  EXPECT_EQ(number_to_string(std::numeric_limits<float>::infinity()), "null");
  for (float v : {0.1f, 1.0f / 3.0f, 1e-30f, 1e30f, 0.2f * 3}) {
    const std::string text = number_to_string(v);
    EXPECT_EQ(std::strtof(text.c_str(), nullptr), v) << text;
  }
}

TEST(JsonWrite, EscapeCoversQuotesBackslashesAndControls) {
  EXPECT_EQ(escape("plain"), "\"plain\"");
  EXPECT_EQ(escape("a\"b"), "\"a\\\"b\"");
  EXPECT_EQ(escape("a\\b"), "\"a\\\\b\"");
  EXPECT_EQ(escape("a\nb\tc"), "\"a\\nb\\tc\"");
  EXPECT_EQ(escape(std::string("a\x01z", 3)), "\"a\\u0001z\"");
  // Every escaped form parses back to the original bytes.
  for (const std::string s : {"plain", "a\"b\\c", "tab\tnl\n", "\x01\x02"}) {
    Value parsed;
    std::string error;
    ASSERT_TRUE(parse(escape(s), parsed, error)) << error;
    EXPECT_EQ(parsed.as_string(), s);
  }
}

TEST(JsonWrite, DumpParseIsAnIdentity) {
  Object inner;
  inner.emplace("pi", Value(3.25));
  inner.emplace("name", Value(std::string("q_r \"collapse\"\n")));
  Array arr;
  arr.push_back(Value(true));
  arr.push_back(Value());
  arr.push_back(Value(std::move(inner)));
  Object root;
  root.emplace("list", Value(std::move(arr)));
  root.emplace("count", Value(3.0));
  const Value doc{Value(std::move(root))};

  const std::string once = dump(doc);
  Value reparsed;
  std::string error;
  ASSERT_TRUE(parse(once, reparsed, error)) << error << ": " << once;
  EXPECT_EQ(dump(reparsed), once);
}

TEST(JsonWrite, DumpSerializesNonFiniteNumbersAsNull) {
  Array arr;
  arr.push_back(Value(std::numeric_limits<double>::quiet_NaN()));
  arr.push_back(Value(1.5));
  const std::string text = dump(Value(std::move(arr)));
  EXPECT_EQ(text, "[null,1.5]");
  Value reparsed;
  std::string error;
  ASSERT_TRUE(parse(text, reparsed, error)) << error;
  EXPECT_TRUE(reparsed.as_array()[0].is_null());
}

// The watchdog use case end to end: a gauge that captured a non-finite loss
// must still export parseable metrics JSONL.
TEST(JsonWrite, MetricsJsonlWithNonFiniteGaugeStaysParseable) {
  Registry reg;
  reg.set_enabled(true);
  reg.gauge("live.train_loss").set(std::numeric_limits<double>::quiet_NaN());
  reg.gauge("live.norm").set(std::numeric_limits<double>::infinity());
  std::ostringstream os;
  reg.write_jsonl(os);
  std::istringstream is(os.str());
  std::string line;
  std::size_t lines = 0;
  while (std::getline(is, line)) {
    ++lines;
    Value v;
    std::string error;
    ASSERT_TRUE(parse(line, v, error)) << error << ": " << line;
    ASSERT_NE(v.find("value"), nullptr);
    EXPECT_TRUE(v.find("value")->is_null()) << line;
  }
  EXPECT_EQ(lines, 2u);
}

}  // namespace
}  // namespace fedwcm::obs::json
