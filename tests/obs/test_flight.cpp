// FlightRecorder: explicit dumps and the fatal-signal path (forked child).
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <fstream>
#include <sstream>
#include <string>

#include "fedwcm/obs/event.hpp"
#include "fedwcm/obs/flight.hpp"
#include "fedwcm/obs/json.hpp"
#include "fedwcm/obs/metrics.hpp"

namespace fedwcm::obs {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream is(path);
  std::stringstream buffer;
  buffer << is.rdbuf();
  return buffer.str();
}

void publish_round(EventBus& bus, int round, EventKind kind,
                   const std::string& detail = {}) {
  Event e;
  e.kind = kind;
  e.round = round;
  e.detail = detail;
  bus.publish(std::move(e));
}

TEST(FlightRecorder, DumpWritesReasonAndNewestEvents) {
  Registry registry;
  EventBus bus(8, &registry);
  bus.set_enabled(true);
  for (int r = 0; r < 12; ++r) publish_round(bus, r, EventKind::kRoundEnd);
  publish_round(bus, 11, EventKind::kWatchdogAlarm, "qr_collapse: q_r=0.1");

  const std::string path =
      testing::TempDir() + "/flight_dump_test.json";
  FlightRecorder recorder(bus, path, /*last_n=*/4);
  ASSERT_TRUE(recorder.dump("watchdog: qr_collapse"));

  json::Value doc;
  std::string error;
  ASSERT_TRUE(json::parse(slurp(path), doc, error)) << error;
  EXPECT_EQ(doc.find("reason")->as_string(), "watchdog: qr_collapse");
  EXPECT_EQ(doc.find("published")->as_number(), 13.0);
  EXPECT_EQ(doc.find("dropped")->as_number(), 5.0);  // Ring capacity 8.
  const auto& events = doc.find("events")->as_array();
  ASSERT_EQ(events.size(), 4u);
  // The triggering alarm event is the newest entry in the dump.
  EXPECT_EQ(events.back().find("kind")->as_string(), "watchdog_alarm");
  EXPECT_EQ(events.back().find("detail")->as_string(), "qr_collapse: q_r=0.1");
  EXPECT_EQ(events.front().find("round")->as_number(), 9.0);
}

TEST(FlightRecorder, RepeatedDumpsLastOneWins) {
  Registry registry;
  EventBus bus(8, &registry);
  bus.set_enabled(true);
  publish_round(bus, 0, EventKind::kRoundEnd);
  const std::string path = testing::TempDir() + "/flight_repeat_test.json";
  FlightRecorder recorder(bus, path);
  ASSERT_TRUE(recorder.dump("first"));
  publish_round(bus, 1, EventKind::kRoundEnd);
  ASSERT_TRUE(recorder.dump("second"));

  json::Value doc;
  std::string error;
  ASSERT_TRUE(json::parse(slurp(path), doc, error)) << error;
  EXPECT_EQ(doc.find("reason")->as_string(), "second");
  EXPECT_EQ(doc.find("events")->as_array().size(), 2u);
}

TEST(FlightRecorder, DumpToUnwritablePathReportsFailure) {
  Registry registry;
  EventBus bus(8, &registry);
  FlightRecorder recorder(bus, "/nonexistent-dir/flight.json");
  EXPECT_FALSE(recorder.dump("whatever"));
}

TEST(FlightRecorder, FatalSignalDumpsBeforeDeath) {
  const std::string path =
      testing::TempDir() + "/flight_signal_test.json";
  std::remove(path.c_str());

  // The child raises SIGABRT with handlers installed; the parent then reads
  // the flight file the dying child left behind. SIGABRT (not SIGSEGV) keeps
  // this friendly to sanitizer builds, which intercept SEGV themselves.
  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    Registry registry;
    EventBus bus(16, &registry);
    bus.set_enabled(true);
    for (int r = 0; r < 3; ++r) publish_round(bus, r, EventKind::kRoundEnd);
    FlightRecorder recorder(bus, path);
    recorder.install_signal_handlers();
    std::raise(SIGABRT);
    _exit(0);  // Unreachable: the handler re-raises with SIG_DFL.
  }
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status));
  EXPECT_EQ(WTERMSIG(status), SIGABRT);

  json::Value doc;
  std::string error;
  ASSERT_TRUE(json::parse(slurp(path), doc, error)) << error;
  EXPECT_EQ(doc.find("reason")->as_string(), "signal SIGABRT");
  EXPECT_EQ(doc.find("events")->as_array().size(), 3u);
}

}  // namespace
}  // namespace fedwcm::obs
