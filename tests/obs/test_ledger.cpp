// Run ledger: collection, schema-strict JSON round-trips, threshold
// comparison semantics, and the human-readable report.
#include "fedwcm/obs/ledger.hpp"

#include <gtest/gtest.h>

#include <string>

#include "fedwcm/obs/metrics.hpp"

namespace fedwcm::obs::prof {
namespace {

Ledger sample_ledger() {
  Ledger ledger;
  ledger.meta.algorithm = "fedwcm";
  ledger.meta.rounds = 12;
  ledger.meta.wall_ms = 345.5;
  ledger.meta.bytes_up = 1000;
  ledger.meta.bytes_down = 2000;
  ledger.meta.profile_samples = 42;
  ledger.cpu_ms = 250.25;
  ledger.peak_rss_kb = 50000.0;
  ledger.end_rss_kb = 48000.0;
  ledger.allocs = 12345;
  ledger.alloc_bytes = 678900;
  ledger.alloc_hook = true;
  ledger.phases[std::size_t(Phase::kLocalTrain)].count = 12;
  ledger.phases[std::size_t(Phase::kLocalTrain)].wall_ms = 200.0;
  ledger.phases[std::size_t(Phase::kLocalTrain)].allocs = 99;
  return ledger;
}

TEST(Ledger, JsonRoundTripPreservesEveryField) {
  const Ledger in = sample_ledger();
  Ledger out;
  std::string error;
  ASSERT_TRUE(ledger_from_json(to_json(in), out, error)) << error;
  EXPECT_EQ(out.schema, "fedwcm.ledger/1");
  EXPECT_EQ(out.meta.algorithm, "fedwcm");
  EXPECT_EQ(out.meta.rounds, 12u);
  EXPECT_FALSE(out.meta.aborted);
  EXPECT_DOUBLE_EQ(out.meta.wall_ms, 345.5);
  EXPECT_EQ(out.meta.bytes_up, 1000u);
  EXPECT_EQ(out.meta.bytes_down, 2000u);
  EXPECT_EQ(out.meta.profile_samples, 42u);
  EXPECT_DOUBLE_EQ(out.cpu_ms, 250.25);
  EXPECT_DOUBLE_EQ(out.peak_rss_kb, 50000.0);
  EXPECT_DOUBLE_EQ(out.end_rss_kb, 48000.0);
  EXPECT_EQ(out.allocs, 12345u);
  EXPECT_EQ(out.alloc_bytes, 678900u);
  EXPECT_TRUE(out.alloc_hook);
  const PhaseTotals& train = out.phases[std::size_t(Phase::kLocalTrain)];
  EXPECT_EQ(train.count, 12u);
  EXPECT_DOUBLE_EQ(train.wall_ms, 200.0);
  EXPECT_EQ(train.allocs, 99u);
  EXPECT_EQ(out.phases[std::size_t(Phase::kCheckpoint)].count, 0u);
}

TEST(Ledger, CollectReadsLiveProcessState) {
  LedgerMeta meta;
  meta.algorithm = "fedavg";
  meta.rounds = 3;
  const Ledger ledger = collect_ledger(meta);
  EXPECT_EQ(ledger.meta.algorithm, "fedavg");
  EXPECT_GT(ledger.peak_rss_kb, 0.0);
  EXPECT_GT(ledger.end_rss_kb, 0.0);
  EXPECT_GT(ledger.cpu_ms, 0.0);
  // The test binary links the counting hook, so allocs are measured.
  EXPECT_TRUE(ledger.alloc_hook);
  EXPECT_GT(ledger.allocs, 0u);
  // And the collected ledger is itself schema-valid.
  Ledger reparsed;
  std::string error;
  EXPECT_TRUE(ledger_from_json(to_json(ledger), reparsed, error)) << error;
}

TEST(Ledger, RejectsMalformedDocuments) {
  Ledger out;
  std::string error;
  EXPECT_FALSE(ledger_from_json("not json", out, error));
  EXPECT_FALSE(ledger_from_json("[]", out, error));
  // Wrong schema string.
  std::string text = to_json(sample_ledger());
  std::string wrong = text;
  wrong.replace(wrong.find("fedwcm.ledger/1"), 15, "fedwcm.ledger/9");
  EXPECT_FALSE(ledger_from_json(wrong, out, error));
  EXPECT_NE(error.find("schema"), std::string::npos) << error;
  // A missing required key.
  std::string missing = text;
  const std::size_t pos = missing.find("\"cpu_ms\"");
  ASSERT_NE(pos, std::string::npos);
  missing.replace(pos, 8, "\"cpu_mz\"");
  EXPECT_FALSE(ledger_from_json(missing, out, error));
  // A mistyped value (string where a number belongs).
  std::string mistyped = text;
  const std::size_t rounds = mistyped.find("\"rounds\":12");
  ASSERT_NE(rounds, std::string::npos);
  mistyped.replace(rounds, 11, "\"rounds\":\"x\"");
  EXPECT_FALSE(ledger_from_json(mistyped, out, error));
}

TEST(Ledger, CompareIdenticalLedgersPasses) {
  const Ledger ledger = sample_ledger();
  std::string report;
  EXPECT_TRUE(compare_ledgers(ledger, ledger, LedgerThresholds{}, report).pass);
  EXPECT_NE(report.find("peak_rss_kb"), std::string::npos);
}

TEST(Ledger, CompareFlagsRssRegression) {
  const Ledger baseline = sample_ledger();
  Ledger fat = baseline;
  fat.peak_rss_kb = baseline.peak_rss_kb * 10.0;
  std::string report;
  EXPECT_FALSE(compare_ledgers(baseline, fat, LedgerThresholds{}, report).pass);
  EXPECT_NE(report.find("FAIL"), std::string::npos) << report;
  // Within the default 1.5x headroom it passes.
  Ledger slight = baseline;
  slight.peak_rss_kb = baseline.peak_rss_kb * 1.4;
  report.clear();
  EXPECT_TRUE(compare_ledgers(baseline, slight, LedgerThresholds{}, report).pass);
}

TEST(Ledger, CpuGateIsOffByDefaultAndOptInWorks) {
  const Ledger baseline = sample_ledger();
  Ledger slow = baseline;
  slow.cpu_ms = baseline.cpu_ms * 100.0;
  std::string report;
  // cpu_factor <= 0 disables the CPU check entirely.
  EXPECT_TRUE(compare_ledgers(baseline, slow, LedgerThresholds{}, report).pass);
  LedgerThresholds strict;
  strict.cpu_factor = 2.0;
  report.clear();
  EXPECT_FALSE(compare_ledgers(baseline, slow, strict, report).pass);
  EXPECT_NE(report.find("cpu_ms"), std::string::npos) << report;
}

Ledger populated_ledger() {
  Ledger ledger = sample_ledger();
  PopulationQuantiles q;
  q.name = "pop.update_norm";
  q.count = 100;
  q.sum = 250.0;
  q.min = 0.5;
  q.max = 9.0;
  q.p5 = 1.0;
  q.p50 = 2.5;
  q.p95 = 7.0;
  q.p99 = 8.5;
  ledger.population.push_back(q);
  PopulationTop top;
  top.name = "pop.dropped_clients";
  top.offered = 40;
  top.saturated = true;
  top.rows.push_back(PopulationTop::Row{7, 12.0, 1.0});
  top.rows.push_back(PopulationTop::Row{3, 8.0, 0.0});
  ledger.population_top.push_back(top);
  return ledger;
}

TEST(Ledger, PopulationBlockRoundTrips) {
  const Ledger in = populated_ledger();
  Ledger out;
  std::string error;
  ASSERT_TRUE(ledger_from_json(to_json(in), out, error)) << error;
  ASSERT_EQ(out.population.size(), 1u);
  EXPECT_EQ(out.population[0].name, "pop.update_norm");
  EXPECT_EQ(out.population[0].count, 100u);
  EXPECT_DOUBLE_EQ(out.population[0].p5, 1.0);
  EXPECT_DOUBLE_EQ(out.population[0].p50, 2.5);
  EXPECT_DOUBLE_EQ(out.population[0].p95, 7.0);
  ASSERT_EQ(out.population_top.size(), 1u);
  EXPECT_EQ(out.population_top[0].name, "pop.dropped_clients");
  EXPECT_EQ(out.population_top[0].offered, 40u);
  EXPECT_TRUE(out.population_top[0].saturated);
  ASSERT_EQ(out.population_top[0].rows.size(), 2u);
  EXPECT_EQ(out.population_top[0].rows[0].key, 7u);
  EXPECT_DOUBLE_EQ(out.population_top[0].rows[0].weight, 12.0);
  EXPECT_DOUBLE_EQ(out.population_top[0].rows[1].error, 0.0);
}

TEST(Ledger, LedgerWithoutPopulationBlockStillParses) {
  // Pre-population ledgers (and runs with --population off) omit the block
  // entirely; both directions of a ledger compare must keep accepting them.
  const std::string text = to_json(sample_ledger());
  EXPECT_EQ(text.find("\"population\""), std::string::npos);
  Ledger out;
  std::string error;
  ASSERT_TRUE(ledger_from_json(text, out, error)) << error;
  EXPECT_TRUE(out.population.empty());
  EXPECT_TRUE(out.population_top.empty());
}

TEST(Ledger, QuantileGateIsOffByDefaultAndOptInWorks) {
  const Ledger baseline = populated_ledger();
  Ledger wide = baseline;
  wide.population[0].p95 = baseline.population[0].p95 * 10.0;
  std::string report;
  // quantile_factor <= 0 disables the gate even with a 10x spread blow-up.
  EXPECT_TRUE(compare_ledgers(baseline, wide, LedgerThresholds{}, report).pass);
  LedgerThresholds strict;
  strict.quantile_factor = 2.0;
  report.clear();
  EXPECT_FALSE(compare_ledgers(baseline, wide, strict, report).pass);
  EXPECT_NE(report.find("pop.update_norm p95"), std::string::npos) << report;
  EXPECT_NE(report.find("FAIL"), std::string::npos) << report;
  // Within the factor it passes (p50 unchanged, p95 below 2x).
  Ledger slight = baseline;
  slight.population[0].p95 = baseline.population[0].p95 * 1.5;
  report.clear();
  EXPECT_TRUE(compare_ledgers(baseline, slight, strict, report).pass) << report;
}

TEST(Ledger, QuantileGateSkipsAndSaysSoWhenPopulationIsMissing) {
  // Telemetry off in one run must not read as a regression — but a requested
  // gate that could not run must be reported as skipped, not silently passed.
  const Ledger baseline = populated_ledger();
  const Ledger bare = sample_ledger();
  LedgerThresholds strict;
  strict.quantile_factor = 1.1;
  std::string report;
  LedgerCompareOutcome outcome =
      compare_ledgers(baseline, bare, strict, report);
  EXPECT_TRUE(outcome.pass) << report;
  EXPECT_TRUE(outcome.quantile_skipped);
  EXPECT_NE(report.find("absent in candidate"), std::string::npos) << report;
  report.clear();
  outcome = compare_ledgers(bare, baseline, strict, report);
  EXPECT_TRUE(outcome.pass) << report;
  EXPECT_TRUE(outcome.quantile_skipped);
  EXPECT_NE(report.find("absent in baseline"), std::string::npos) << report;
  // Empty sketches (count == 0) cannot be gated either: with no sketch
  // carrying data on both sides the gate is skipped, loudly.
  Ledger empty_sketch = baseline;
  empty_sketch.population[0].count = 0;
  empty_sketch.population[0].p95 = 1e9;
  report.clear();
  outcome = compare_ledgers(baseline, empty_sketch, strict, report);
  EXPECT_TRUE(outcome.pass) << report;
  EXPECT_TRUE(outcome.quantile_skipped);
  EXPECT_NE(report.find("no sketch with data"), std::string::npos) << report;
  // A gate that did run never reports skipped.
  report.clear();
  outcome = compare_ledgers(baseline, populated_ledger(), strict, report);
  EXPECT_TRUE(outcome.pass) << report;
  EXPECT_FALSE(outcome.quantile_skipped);
}

TEST(Ledger, QuantileGateOnPr6EraLedgerArtifactSkips) {
  // Regression: a serialized pre-population ledger (PR-6-era artifact, no
  // "population" key at all) run through the --quantile-factor gate used to
  // fall through the gate loop silently and report an unqualified pass.
  const std::string pr6_json = to_json(sample_ledger());
  ASSERT_EQ(pr6_json.find("\"population\""), std::string::npos);
  Ledger pr6;
  std::string error;
  ASSERT_TRUE(ledger_from_json(pr6_json, pr6, error)) << error;
  LedgerThresholds strict;
  strict.quantile_factor = 2.0;
  std::string report;
  const LedgerCompareOutcome outcome =
      compare_ledgers(pr6, pr6, strict, report);
  EXPECT_TRUE(outcome.pass) << report;
  EXPECT_TRUE(outcome.quantile_skipped);
  EXPECT_NE(report.find("absent in baseline and candidate"), std::string::npos)
      << report;
  EXPECT_NE(report.find("quantile gate not run"), std::string::npos) << report;
}

TEST(Ledger, FormatReportNamesEveryPhase) {
  const std::string report = format_ledger_report(sample_ledger());
  for (const char* phase : {"sample", "local_train", "upload", "aggregate",
                            "evaluate", "checkpoint"})
    EXPECT_NE(report.find(phase), std::string::npos) << phase;
  EXPECT_NE(report.find("fedwcm"), std::string::npos);
}

}  // namespace
}  // namespace fedwcm::obs::prof
