// StackSampler: SIGPROF capture smoke, folded-output shape, and lifecycle.
// Not part of the TSan test subset — signal-driven sampling and TSan's
// signal interception do not mix; the sampler's read-only guarantee is
// enforced separately by the fl read-only trajectory test.
#include "fedwcm/obs/sampler.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <string>

#include "fedwcm/analysis/flame.hpp"

namespace fedwcm::obs::prof {
namespace {

/// Burns CPU until the sampler has ticks or the deadline passes. ITIMER_PROF
/// only advances with CPU consumption, so sleeping would capture nothing.
void spin_until_sampled(const StackSampler& sampler, double max_seconds) {
  const auto t0 = std::chrono::steady_clock::now();
  volatile double sink = 0.0;
  while (sampler.sample_count() == 0 &&
         std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
                 .count() < max_seconds) {
    for (int i = 0; i < 100000; ++i) sink = sink + double(i) * 1e-9;
  }
}

TEST(StackSampler, CapturesAndFoldsBusyLoopSamples) {
  StackSampler sampler;
  StackSampler::Options options;
  options.hz = 997;  // Fast ticks keep the test short.
  ASSERT_TRUE(sampler.start(options));
  EXPECT_TRUE(sampler.running());
  spin_until_sampled(sampler, 10.0);
  sampler.stop();
  EXPECT_FALSE(sampler.running());
  ASSERT_GT(sampler.sample_count(), 0u);

  // Folded output: total counts equal captured ticks, frames are
  // separator-clean, and the analysis-side parser accepts it verbatim.
  std::uint64_t total = 0;
  for (const auto& [stack, count] : sampler.fold()) {
    EXPECT_FALSE(stack.empty());
    EXPECT_EQ(stack.find(' '), std::string::npos) << stack;
    EXPECT_GT(count, 0u);
    total += count;
  }
  EXPECT_EQ(total, sampler.sample_count());
  std::vector<analysis::FoldedStack> stacks;
  std::string error;
  EXPECT_TRUE(analysis::parse_folded(sampler.write_folded(), stacks, error))
      << error;
  EXPECT_FALSE(stacks.empty());

  // clear() forgets the capture but leaves the sampler restartable.
  sampler.clear();
  EXPECT_EQ(sampler.sample_count(), 0u);
  EXPECT_EQ(sampler.write_folded(), "");
}

TEST(StackSampler, SecondConcurrentStartIsRefused) {
  StackSampler first;
  ASSERT_TRUE(first.start());
  StackSampler second;
  EXPECT_FALSE(second.start());  // SIGPROF disposition is process-wide.
  first.stop();
  // Once the first stops, a fresh start succeeds again.
  EXPECT_TRUE(second.start());
  second.stop();
}

TEST(StackSampler, StopWithoutStartIsHarmless) {
  StackSampler sampler;
  sampler.stop();
  EXPECT_FALSE(sampler.running());
  EXPECT_EQ(sampler.sample_count(), 0u);
  EXPECT_EQ(sampler.dropped(), 0u);
}

}  // namespace
}  // namespace fedwcm::obs::prof
