// Metrics registry: counter/gauge/histogram semantics, disabled-mode no-ops,
// shared handles across acquisition sites, and concurrency under the pool.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "fedwcm/core/thread_pool.hpp"
#include "fedwcm/obs/json.hpp"
#include "fedwcm/obs/metrics.hpp"
#include "fedwcm/obs/promtext.hpp"

namespace fedwcm::obs {
namespace {

// Each test uses its own registry; the global one stays untouched.

TEST(Metrics, CounterCountsWhenEnabled) {
  Registry reg;
  reg.set_enabled(true);
  Counter c = reg.counter("test.count");
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(Metrics, DisabledHandlesAreNoOps) {
  Registry reg;
  Counter c = reg.counter("test.count");
  Gauge g = reg.gauge("test.gauge");
  Histogram h = reg.histogram("test.hist", {1.0, 10.0});
  c.add(5);
  g.set(3.0);
  h.observe(0.5);
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0.0);
  EXPECT_EQ(h.count(), 0u);

  // Re-enabling makes the *same* handles live (the switch is per-registry,
  // not baked into the handle).
  reg.set_enabled(true);
  c.add(5);
  EXPECT_EQ(c.value(), 5u);
}

TEST(Metrics, DefaultConstructedHandlesAreSafe) {
  Counter c;
  Gauge g;
  Histogram h;
  Sketch s;
  c.add();
  g.set(1.0);
  h.observe(1.0);
  s.observe(1.0);
  EXPECT_EQ(c.value(), 0u);
  EXPECT_TRUE(std::isnan(h.quantile(0.5)));
  EXPECT_EQ(s.count(), 0u);
  EXPECT_TRUE(std::isnan(s.quantile(0.5)));
}

TEST(Metrics, SameNameSharesACell) {
  Registry reg;
  reg.set_enabled(true);
  Counter a = reg.counter("shared");
  Counter b = reg.counter("shared");
  a.add(2);
  b.add(3);
  EXPECT_EQ(a.value(), 5u);
  EXPECT_EQ(b.value(), 5u);
}

TEST(Metrics, GaugeIsLastWriteWins) {
  Registry reg;
  reg.set_enabled(true);
  Gauge g = reg.gauge("depth");
  g.set(4.0);
  g.set(2.5);
  EXPECT_EQ(g.value(), 2.5);
}

TEST(Metrics, HistogramStatsAndQuantiles) {
  Registry reg;
  reg.set_enabled(true);
  Histogram h = reg.histogram("lat", {1.0, 2.0, 4.0, 8.0});
  for (double v : {0.5, 1.5, 1.5, 3.0, 7.0, 20.0}) h.observe(v);
  EXPECT_EQ(h.count(), 6u);
  EXPECT_DOUBLE_EQ(h.sum(), 33.5);
  // p50 lands in the (1, 2] bucket, p99 in the overflow bucket.
  EXPECT_GT(h.quantile(0.5), 1.0);
  EXPECT_LE(h.quantile(0.5), 2.0);
  EXPECT_GT(h.quantile(0.99), 8.0);
  // Quantiles are monotone in q.
  EXPECT_LE(h.quantile(0.5), h.quantile(0.9));
  EXPECT_LE(h.quantile(0.9), h.quantile(0.99));
}

TEST(Metrics, QuantileOfEmptyHistogramIsNaN) {
  // NaN, not 0: "no data" must be distinguishable from "all observations
  // were 0" (it serializes as null through the JSON non-finite path).
  Registry reg;
  reg.set_enabled(true);
  Histogram h = reg.histogram("empty", {1.0, 2.0, 4.0});
  for (double q : {0.0, 0.5, 0.99, 1.0}) EXPECT_TRUE(std::isnan(h.quantile(q)));
}

TEST(Metrics, QuantileOfSingleSampleStaysInItsBucket) {
  Registry reg;
  reg.set_enabled(true);
  Histogram h = reg.histogram("single", {1.0, 2.0, 4.0});
  h.observe(1.5);  // lands in (1, 2]
  for (double q : {0.1, 0.5, 0.9, 1.0}) {
    EXPECT_GE(h.quantile(q), 1.0) << q;
    EXPECT_LE(h.quantile(q), 2.0) << q;
  }
  // Linear interpolation inside the bucket: the midpoint quantile is exact.
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 1.5);
  EXPECT_LE(h.quantile(0.1), h.quantile(0.5));
  EXPECT_LE(h.quantile(0.5), h.quantile(0.9));
}

TEST(Metrics, QuantileOfAllEqualSamplesStaysInTheirBucket) {
  Registry reg;
  reg.set_enabled(true);
  Histogram h = reg.histogram("equal", {1.0, 2.0, 4.0});
  for (int i = 0; i < 5; ++i) h.observe(3.0);  // all in (2, 4]
  for (double q : {0.01, 0.5, 0.99}) {
    EXPECT_GT(h.quantile(q), 2.0) << q;
    EXPECT_LE(h.quantile(q), 4.0) << q;
  }
}

TEST(Metrics, QuantileOfAllOverflowHistogramIsNaN) {
  // Every observation past the last bound means the buckets say nothing
  // about the distribution shape — any interpolated number would be an
  // invention, so the quantile reports NaN (null in JSON) instead.
  Registry reg;
  reg.set_enabled(true);
  Histogram h = reg.histogram("overflow", {1.0, 2.0, 4.0});
  h.observe(100.0);
  h.observe(100.0);
  for (double q : {0.25, 0.5, 0.99, 1.0})
    EXPECT_TRUE(std::isnan(h.quantile(q))) << q;
}

TEST(Metrics, QuantilePartialOverflowInterpolatesUpToObservedMax) {
  Registry reg;
  reg.set_enabled(true);
  Histogram h = reg.histogram("overflow.partial", {1.0, 2.0, 4.0});
  h.observe(0.5);
  h.observe(100.0);
  // With in-range mass present, the overflow bucket interpolates between
  // the last bound and the observed max, never past it.
  for (double q : {0.75, 0.99, 1.0}) {
    EXPECT_GE(h.quantile(q), 4.0) << q;
    EXPECT_LE(h.quantile(q), 100.0) << q;
  }
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 100.0);
}

TEST(Metrics, ConcurrentIncrementsFromThreadPool) {
  Registry reg;
  reg.set_enabled(true);
  Counter c = reg.counter("concurrent.count");
  Histogram h = reg.histogram("concurrent.hist", time_buckets_ms());
  core::ThreadPool pool(4);
  constexpr std::size_t kTasks = 64;
  constexpr std::size_t kPerTask = 1000;
  core::parallel_for(pool, 0, kTasks, [&](std::size_t i) {
    for (std::size_t k = 0; k < kPerTask; ++k) {
      c.add();
      h.observe(double(i % 7));
    }
  });
  EXPECT_EQ(c.value(), kTasks * kPerTask);
  EXPECT_EQ(h.count(), kTasks * kPerTask);
}

TEST(Metrics, ConcurrentRegistrationSharesCells) {
  // Many threads race to register the same names; every handle must land on
  // the same cell (lookups are mutex-guarded) and no update may be lost.
  Registry reg;
  reg.set_enabled(true);
  core::ThreadPool pool(4);
  constexpr std::size_t kTasks = 32;
  core::parallel_for(pool, 0, kTasks, [&](std::size_t i) {
    Counter c = reg.counter("race.count." + std::to_string(i % 4));
    Gauge g = reg.gauge("race.gauge");
    Histogram h = reg.histogram("race.hist", {1.0, 10.0});
    for (int k = 0; k < 100; ++k) {
      c.add();
      g.set(double(i));
      h.observe(double(k % 12));
    }
  });
  std::uint64_t total = 0;
  for (std::size_t n = 0; n < 4; ++n)
    total += reg.counter("race.count." + std::to_string(n)).value();
  EXPECT_EQ(total, kTasks * 100);
  EXPECT_EQ(reg.histogram("race.hist", {}).count(), kTasks * 100);
}

TEST(Metrics, ConcurrentScrapeSeesConsistentExposition) {
  // A /metrics scrape racing live observation must always produce a payload
  // the strict validator accepts (cumulative buckets, _count == +Inf).
  Registry reg;
  reg.set_enabled(true);
  Counter c = reg.counter("scrape.count");
  Histogram h = reg.histogram("scrape.hist", time_buckets_ms());
  core::ThreadPool pool(4);
  constexpr std::size_t kTasks = 8;
  core::parallel_for(pool, 0, kTasks, [&](std::size_t i) {
    if (i == 0) {
      for (int scrape = 0; scrape < 50; ++scrape) {
        std::ostringstream os;
        reg.write_prometheus(os);
        std::string error;
        ASSERT_TRUE(validate_prometheus_text(os.str(), error)) << error;
      }
    } else {
      for (int k = 0; k < 5000; ++k) {
        c.add();
        h.observe(double(k % 97));
      }
    }
  });
  EXPECT_EQ(c.value(), (kTasks - 1) * 5000);
}

TEST(Metrics, LabeledSeriesAreDistinctFromEachOtherAndTheBareName) {
  Registry reg;
  reg.set_enabled(true);
  Counter plain = reg.counter("pool.tasks");
  Counter sim = reg.counter("pool.tasks", {{"pool", "simulation"}});
  Counter eval = reg.counter("pool.tasks", {{"pool", "eval"}});
  plain.add(1);
  sim.add(10);
  eval.add(100);
  EXPECT_EQ(plain.value(), 1u);
  EXPECT_EQ(sim.value(), 10u);
  EXPECT_EQ(eval.value(), 100u);
  // Identical (name, labels) lands on the same cell.
  Counter sim2 = reg.counter("pool.tasks", {{"pool", "simulation"}});
  sim2.add(5);
  EXPECT_EQ(sim.value(), 15u);
}

TEST(Metrics, CounterSetMirrorsExternalMonotonicCounts) {
  Registry reg;
  reg.set_enabled(true);
  Counter c = reg.counter("mirror.count", {{"pool", "p"}});
  c.set(10);
  EXPECT_EQ(c.value(), 10u);
  c.set(42);
  EXPECT_EQ(c.value(), 42u);
}

TEST(Metrics, JsonlCarriesLabels) {
  Registry reg;
  reg.set_enabled(true);
  reg.counter("pool.tasks", {{"pool", "simulation"}}).add(3);
  reg.gauge("pool.depth", {{"pool", "simulation"}}).set(2.0);
  std::ostringstream os;
  reg.write_jsonl(os);
  std::istringstream is(os.str());
  std::string line;
  std::size_t labeled = 0;
  while (std::getline(is, line)) {
    json::Value v;
    std::string error;
    ASSERT_TRUE(json::parse(line, v, error)) << error << ": " << line;
    const json::Value* labels = v.find("labels");
    ASSERT_NE(labels, nullptr) << line;
    ASSERT_TRUE(labels->is_object());
    EXPECT_EQ(labels->find("pool")->as_string(), "simulation");
    ++labeled;
  }
  EXPECT_EQ(labeled, 2u);
}

TEST(Metrics, SnapshotStaysConsistentUnderConcurrentLabeledWriters) {
  // Writers hammer labeled series while a reader repeatedly snapshots the
  // whole registry; every snapshot must parse, and no update may be lost.
  Registry reg;
  reg.set_enabled(true);
  core::ThreadPool pool(4);
  constexpr std::size_t kTasks = 8;
  constexpr std::size_t kPerTask = 2000;
  core::parallel_for(pool, 0, kTasks, [&](std::size_t i) {
    if (i == 0) {
      for (int snap = 0; snap < 40; ++snap) {
        std::ostringstream os;
        reg.write_jsonl(os);
        std::istringstream is(os.str());
        std::string line;
        while (std::getline(is, line)) {
          json::Value v;
          std::string error;
          ASSERT_TRUE(json::parse(line, v, error)) << error << ": " << line;
        }
      }
    } else {
      Counter c =
          reg.counter("snap.count", {{"pool", "p" + std::to_string(i % 2)}});
      Histogram h = reg.histogram("snap.hist", {1.0, 10.0});
      for (std::size_t k = 0; k < kPerTask; ++k) {
        c.add();
        h.observe(double(k % 13));
      }
    }
  });
  std::uint64_t total = 0;
  for (const char* p : {"p0", "p1"})
    total += reg.counter("snap.count", {{"pool", p}}).value();
  EXPECT_EQ(total, (kTasks - 1) * kPerTask);
  EXPECT_EQ(reg.histogram("snap.hist", {}).count(), (kTasks - 1) * kPerTask);
}

TEST(Metrics, JsonlExportParsesAndCarriesSummaries) {
  Registry reg;
  reg.set_enabled(true);
  Counter c = reg.counter("comm.bytes_up");
  c.add(1234);
  Histogram h = reg.histogram("round.wall_ms", time_buckets_ms());
  h.observe(3.0);
  h.observe(5.0);
  std::ostringstream os;
  reg.write_jsonl(os);
  std::istringstream is(os.str());
  std::string line;
  bool saw_counter = false, saw_hist = false;
  while (std::getline(is, line)) {
    json::Value v;
    std::string error;
    ASSERT_TRUE(json::parse(line, v, error)) << error << ": " << line;
    const std::string& name = v.find("metric")->as_string();
    if (name == "comm.bytes_up") {
      saw_counter = true;
      EXPECT_EQ(v.find("value")->as_number(), 1234.0);
    } else if (name == "round.wall_ms") {
      saw_hist = true;
      EXPECT_EQ(v.find("count")->as_number(), 2.0);
      EXPECT_DOUBLE_EQ(v.find("sum")->as_number(), 8.0);
      EXPECT_DOUBLE_EQ(v.find("mean")->as_number(), 4.0);
      EXPECT_DOUBLE_EQ(v.find("min")->as_number(), 3.0);
      EXPECT_DOUBLE_EQ(v.find("max")->as_number(), 5.0);
      ASSERT_NE(v.find("p50"), nullptr);
      ASSERT_NE(v.find("p99"), nullptr);
    }
  }
  EXPECT_TRUE(saw_counter);
  EXPECT_TRUE(saw_hist);
}

TEST(Metrics, SketchCellObservesAndSharesByName) {
  Registry reg;
  reg.set_enabled(true);
  Sketch a = reg.sketch("client.norm");
  Sketch b = reg.sketch("client.norm");
  for (double v : {1.0, 2.0, 4.0}) a.observe(v);
  b.observe(8.0);
  // Same name lands on the same cell, like counters/gauges/histograms.
  EXPECT_EQ(a.count(), 4u);
  EXPECT_EQ(b.count(), 4u);
  EXPECT_DOUBLE_EQ(a.sum(), 15.0);
  EXPECT_DOUBLE_EQ(a.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(a.quantile(1.0), 8.0);
}

TEST(Metrics, SketchDisabledObserveIsANoOp) {
  Registry reg;
  Sketch s = reg.sketch("off.norm");
  s.observe(3.0);
  EXPECT_EQ(s.count(), 0u);
  reg.set_enabled(true);
  s.observe(3.0);
  EXPECT_EQ(s.count(), 1u);
}

TEST(Metrics, SketchSnapshotsCopyStateForMerging) {
  Registry reg;
  reg.set_enabled(true);
  Sketch s = reg.sketch("snapshot.norm");
  s.observe(2.0);
  auto snaps = reg.sketch_snapshots();
  ASSERT_EQ(snaps.size(), 1u);
  EXPECT_EQ(snaps[0].name, "snapshot.norm");
  EXPECT_EQ(snaps[0].sketch.count(), 1u);
  // The snapshot is a copy: further observes don't retro-change it.
  s.observe(4.0);
  EXPECT_EQ(snaps[0].sketch.count(), 1u);
}

TEST(Metrics, JsonlCarriesSketchQuantiles) {
  Registry reg;
  reg.set_enabled(true);
  Sketch s = reg.sketch("jsonl.norm");
  for (double v : {1.0, 2.0, 3.0, 4.0}) s.observe(v);
  std::ostringstream os;
  reg.write_jsonl(os);
  std::istringstream is(os.str());
  std::string line;
  bool saw_sketch = false;
  while (std::getline(is, line)) {
    json::Value v;
    std::string error;
    ASSERT_TRUE(json::parse(line, v, error)) << error << ": " << line;
    if (v.find("metric")->as_string() != "jsonl.norm") continue;
    saw_sketch = true;
    EXPECT_EQ(v.find("type")->as_string(), "sketch");
    EXPECT_EQ(v.find("count")->as_number(), 4.0);
    EXPECT_DOUBLE_EQ(v.find("sum")->as_number(), 10.0);
    EXPECT_DOUBLE_EQ(v.find("min")->as_number(), 1.0);
    EXPECT_DOUBLE_EQ(v.find("max")->as_number(), 4.0);
    ASSERT_NE(v.find("p5"), nullptr);
    ASSERT_NE(v.find("p50"), nullptr);
    ASSERT_NE(v.find("p95"), nullptr);
  }
  EXPECT_TRUE(saw_sketch);
}

TEST(Metrics, ConcurrentSketchObservesLoseNothing) {
  Registry reg;
  reg.set_enabled(true);
  Sketch s = reg.sketch("concurrent.norm");
  core::ThreadPool pool(4);
  constexpr std::size_t kTasks = 16;
  constexpr std::size_t kPerTask = 1000;
  core::parallel_for(pool, 0, kTasks, [&](std::size_t i) {
    for (std::size_t k = 0; k < kPerTask; ++k)
      s.observe(double(1 + (i + k) % 7));
  });
  EXPECT_EQ(s.count(), kTasks * kPerTask);
}

TEST(Metrics, TableListsEveryMetric) {
  Registry reg;
  reg.set_enabled(true);
  reg.counter("a.count").add(7);
  reg.gauge("b.gauge").set(1.5);
  reg.histogram("c.hist", {1.0}).observe(0.5);
  reg.sketch("d.sketch").observe(0.5);
  const std::string table = reg.to_table();
  EXPECT_NE(table.find("a.count"), std::string::npos);
  EXPECT_NE(table.find("b.gauge"), std::string::npos);
  EXPECT_NE(table.find("c.hist"), std::string::npos);
  EXPECT_NE(table.find("d.sketch"), std::string::npos);
}

TEST(Metrics, ResetDropsMetrics) {
  Registry reg;
  reg.set_enabled(true);
  reg.counter("gone").add(1);
  reg.reset();
  std::ostringstream os;
  reg.write_jsonl(os);
  EXPECT_EQ(os.str(), "");
}

}  // namespace
}  // namespace fedwcm::obs
