// PhaseAccountant: per-phase totals, RAII scopes, disabled-mode no-ops, and
// exact accounting under concurrent recorders (TSan covers this file).
#include "fedwcm/obs/prof.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "fedwcm/obs/metrics.hpp"
#include "fedwcm/obs/poolstats.hpp"
#include "fedwcm/obs/resource.hpp"

namespace fedwcm::obs::prof {
namespace {

/// Enables the global accountant (and the metrics registry its histograms
/// live in) for one test, restoring both on exit.
struct ScopedAccountant {
  ScopedAccountant() {
    metrics().set_enabled(true);
    accountant().reset();
    accountant().set_enabled(true);
  }
  ~ScopedAccountant() {
    accountant().set_enabled(false);
    accountant().reset();
    metrics().set_enabled(false);
  }
};

TEST(Prof, PhaseNamesAreStable) {
  EXPECT_STREQ(to_string(Phase::kSample), "sample");
  EXPECT_STREQ(to_string(Phase::kLocalTrain), "local_train");
  EXPECT_STREQ(to_string(Phase::kUpload), "upload");
  EXPECT_STREQ(to_string(Phase::kAggregate), "aggregate");
  EXPECT_STREQ(to_string(Phase::kEvaluate), "evaluate");
  EXPECT_STREQ(to_string(Phase::kCheckpoint), "checkpoint");
}

TEST(Prof, DisabledScopeRecordsNothing) {
  accountant().set_enabled(false);
  accountant().reset();
  {
    PhaseScope scope(Phase::kAggregate);
    volatile int sink = 0;
    for (int i = 0; i < 1000; ++i) sink = sink + i;
  }
  EXPECT_EQ(accountant().totals(Phase::kAggregate).count, 0u);
}

TEST(Prof, ScopeRecordsOneOccurrencePerBracket) {
  ScopedAccountant guard;
  for (int i = 0; i < 3; ++i) {
    PhaseScope scope(Phase::kEvaluate);
    // Touch the heap so the allocation delta has something to see when the
    // counting hook is linked (it is, in this binary).
    std::vector<int> v(256, i);
    ASSERT_EQ(v.size(), 256u);
  }
  const PhaseTotals t = accountant().totals(Phase::kEvaluate);
  EXPECT_EQ(t.count, 3u);
  EXPECT_GE(t.wall_ms, 0.0);
  EXPECT_GE(t.rss_peak_kb, 0.0);
  if (alloc_hook_linked()) EXPECT_GT(t.allocs, 0u);
  // Other phases stayed untouched.
  EXPECT_EQ(accountant().totals(Phase::kUpload).count, 0u);
}

TEST(Prof, RecordFoldsExactTotals) {
  ScopedAccountant guard;
  PhaseSample sample;
  sample.wall_ms = 2.0;
  sample.cpu_ms = 1.0;
  sample.rss_delta_kb = -4.0;
  sample.rss_end_kb = 100.0;
  sample.allocs = 7;
  sample.alloc_bytes = 512;
  accountant().record(Phase::kSample, sample);
  sample.rss_end_kb = 250.0;
  accountant().record(Phase::kSample, sample);
  const PhaseTotals t = accountant().totals(Phase::kSample);
  EXPECT_EQ(t.count, 2u);
  EXPECT_DOUBLE_EQ(t.wall_ms, 4.0);
  EXPECT_DOUBLE_EQ(t.cpu_ms, 2.0);
  EXPECT_DOUBLE_EQ(t.rss_delta_kb, -8.0);
  EXPECT_DOUBLE_EQ(t.rss_peak_kb, 250.0);  // max, not sum.
  EXPECT_EQ(t.allocs, 14u);
  EXPECT_EQ(t.alloc_bytes, 1024u);
}

TEST(Prof, ConcurrentRecordersLoseNothing) {
  ScopedAccountant guard;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 2000;
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&go] {
      while (!go.load(std::memory_order_acquire)) {}
      PhaseSample s;
      s.wall_ms = 0.5;
      s.allocs = 2;
      for (int i = 0; i < kPerThread; ++i)
        accountant().record(Phase::kLocalTrain, s);
    });
  }
  // A racing reader: snapshots must always be internally sane (count and
  // sums only ever grow; the per-field relaxed loads never tear a uint64).
  std::thread reader([&go] {
    while (!go.load(std::memory_order_acquire)) {}
    std::uint64_t last = 0;
    for (int i = 0; i < 500; ++i) {
      const PhaseTotals t = accountant().totals(Phase::kLocalTrain);
      ASSERT_GE(t.count, last);
      last = t.count;
    }
  });
  go.store(true, std::memory_order_release);
  for (auto& t : threads) t.join();
  reader.join();
  const PhaseTotals t = accountant().totals(Phase::kLocalTrain);
  EXPECT_EQ(t.count, std::uint64_t(kThreads) * kPerThread);
  EXPECT_DOUBLE_EQ(t.wall_ms, 0.5 * kThreads * kPerThread);
  EXPECT_EQ(t.allocs, 2u * kThreads * kPerThread);
}

TEST(Prof, WallHistogramMergesConcurrentObservations) {
  ScopedAccountant guard;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 1000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      PhaseSample s;
      for (int i = 0; i < kPerThread; ++i) {
        s.wall_ms = double(t + 1);
        accountant().record(Phase::kAggregate, s);
      }
    });
  }
  for (auto& t : threads) t.join();
  // The registry histogram the accountant feeds merged every observation.
  Histogram h = metrics().histogram("prof.aggregate.wall_ms", {});
  EXPECT_EQ(h.count(), std::uint64_t(kThreads) * kPerThread);
  EXPECT_DOUBLE_EQ(h.sum(), (1.0 + 2.0 + 3.0 + 4.0) * kPerThread);
}

TEST(Prof, PublishPoolStatsCreatesLabeledSeries) {
  metrics().set_enabled(true);
  core::ThreadPool pool(2, "prof_test_pool");
  EXPECT_EQ(pool.name(), "prof_test_pool");
  std::atomic<int> done{0};
  core::parallel_for(pool, 0, 16, [&](std::size_t) { done.fetch_add(1); });
  ASSERT_EQ(done.load(), 16);
  publish_pool_stats(pool);
  const Labels labels{{"pool", "prof_test_pool"}};
  EXPECT_EQ(metrics().counter("threadpool.tasks_executed", labels).value(),
            pool.tasks_executed());
  EXPECT_GT(pool.tasks_executed(), 0u);
  metrics().set_enabled(false);
}

TEST(Prof, ResourceReadersReportPlausibleValues) {
  const double rss = current_rss_kb();
  const double peak = peak_rss_kb();
  EXPECT_GT(rss, 0.0);
  EXPECT_GE(peak, rss * 0.5);  // VmHWM can lag statm slightly, never hugely.
  const std::uint64_t cpu0 = process_cpu_us();
  volatile double sink = 0.0;
  for (int i = 0; i < 2000000; ++i) sink = sink + double(i) * 1e-9;
  EXPECT_GE(process_cpu_us(), cpu0);
  EXPECT_GT(clock_monotonic_us(), 0u);
}

}  // namespace
}  // namespace fedwcm::obs::prof
