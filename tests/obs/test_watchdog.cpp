// Watchdog rules engine over synthetic round-sample sequences.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "fedwcm/obs/watchdog.hpp"

namespace fedwcm::obs {
namespace {

RoundSample sample(std::int64_t round) {
  RoundSample s;
  s.round = round;
  return s;
}

TEST(Watchdog, QuietRunNeverTrips) {
  Watchdog dog;  // Defaults: only the non-finite and stall rules are armed.
  for (int r = 0; r < 50; ++r) {
    RoundSample s = sample(r);
    s.train_loss = 1.0 / (1.0 + r);
    s.has_train_loss = true;
    s.qr = 0.9;
    s.min_class_recall = 0.5;
    s.round_wall_ms = 10.0 + (r % 3);
    EXPECT_FALSE(dog.observe(s).has_value()) << "round " << r;
  }
  EXPECT_FALSE(dog.tripped());
  EXPECT_TRUE(dog.alarms().empty());
}

TEST(Watchdog, NonFiniteLossTripsImmediately) {
  Watchdog dog;
  RoundSample s = sample(4);
  s.train_loss = std::numeric_limits<double>::quiet_NaN();
  s.has_train_loss = true;
  const auto alarm = dog.observe(s);
  ASSERT_TRUE(alarm.has_value());
  EXPECT_EQ(alarm->rule, "non_finite");
  EXPECT_EQ(alarm->round, 4);
  EXPECT_TRUE(std::isnan(alarm->value));
  EXPECT_TRUE(dog.tripped());
}

TEST(Watchdog, NonFiniteParamsTrip) {
  Watchdog dog;
  RoundSample s = sample(2);
  s.params_finite = false;
  const auto alarm = dog.observe(s);
  ASSERT_TRUE(alarm.has_value());
  EXPECT_EQ(alarm->rule, "non_finite");
}

TEST(Watchdog, NonFiniteRuleCanBeDisarmed) {
  WatchdogConfig config;
  config.check_non_finite = false;
  Watchdog dog(config);
  RoundSample s = sample(0);
  s.params_finite = false;
  s.train_loss = std::numeric_limits<double>::infinity();
  s.has_train_loss = true;
  EXPECT_FALSE(dog.observe(s).has_value());
}

TEST(Watchdog, QrCollapseNeedsTheFullWindow) {
  WatchdogConfig config;
  config.qr_threshold = 0.3;
  config.qr_window = 3;
  Watchdog dog(config);

  // Two bad rounds, one good one: the streak resets.
  for (int r = 0; r < 2; ++r) {
    RoundSample s = sample(r);
    s.qr = 0.1;
    EXPECT_FALSE(dog.observe(s).has_value());
  }
  RoundSample good = sample(2);
  good.qr = 0.8;
  EXPECT_FALSE(dog.observe(good).has_value());

  // Undiagnosed rounds neither count nor reset.
  for (int r = 3; r < 5; ++r) {
    RoundSample s = sample(r);
    s.qr = 0.1;
    EXPECT_FALSE(dog.observe(s).has_value());
  }
  EXPECT_FALSE(dog.observe(sample(5)).has_value());  // qr unset.
  RoundSample third = sample(6);
  third.qr = 0.2;
  const auto alarm = dog.observe(third);
  ASSERT_TRUE(alarm.has_value());
  EXPECT_EQ(alarm->rule, "qr_collapse");
  EXPECT_EQ(alarm->round, 6);
  EXPECT_DOUBLE_EQ(alarm->value, 0.2);
}

TEST(Watchdog, RecallCollapseRespectsWarmup) {
  WatchdogConfig config;
  config.recall_floor = 0.1;
  config.recall_window = 2;
  config.recall_warmup = 5;
  Watchdog dog(config);

  // Rounds before warmup never count, however bad.
  for (int r = 0; r < 5; ++r) {
    RoundSample s = sample(r);
    s.min_class_recall = 0.0;
    EXPECT_FALSE(dog.observe(s).has_value()) << "round " << r;
  }
  RoundSample r5 = sample(5);
  r5.min_class_recall = 0.0;
  EXPECT_FALSE(dog.observe(r5).has_value());
  RoundSample r6 = sample(6);
  r6.min_class_recall = 0.05;
  const auto alarm = dog.observe(r6);
  ASSERT_TRUE(alarm.has_value());
  EXPECT_EQ(alarm->rule, "recall_collapse");
}

TEST(Watchdog, RoundStallAgainstTrailingMedian) {
  WatchdogConfig config;
  config.stall_factor = 5.0;
  config.stall_min_rounds = 4;
  Watchdog dog(config);

  for (int r = 0; r < 4; ++r) {
    RoundSample s = sample(r);
    s.round_wall_ms = 10.0;
    EXPECT_FALSE(dog.observe(s).has_value());
  }
  // 4x the median: under the factor, no alarm — and it joins the history.
  RoundSample fast = sample(4);
  fast.round_wall_ms = 40.0;
  EXPECT_FALSE(dog.observe(fast).has_value());
  RoundSample stalled = sample(5);
  stalled.round_wall_ms = 200.0;  // 20x the 10ms median.
  const auto alarm = dog.observe(stalled);
  ASSERT_TRUE(alarm.has_value());
  EXPECT_EQ(alarm->rule, "round_stall");
  EXPECT_DOUBLE_EQ(alarm->value, 200.0);
}

TEST(Watchdog, SpreadCollapseNeedsTheFullWindow) {
  WatchdogConfig config;
  config.spread_floor = 1.2;
  config.spread_window = 3;
  Watchdog dog(config);

  // Two collapsed rounds, then a healthy one: the streak resets.
  for (int r = 0; r < 2; ++r) {
    RoundSample s = sample(r);
    s.norm_spread = 1.05;
    EXPECT_FALSE(dog.observe(s).has_value()) << "round " << r;
  }
  RoundSample healthy = sample(2);
  healthy.norm_spread = 2.0;
  EXPECT_FALSE(dog.observe(healthy).has_value());

  // Unmeasured rounds (population telemetry off / no uploads) neither count
  // nor reset the streak.
  for (int r = 3; r < 5; ++r) {
    RoundSample s = sample(r);
    s.norm_spread = 1.1;
    EXPECT_FALSE(dog.observe(s).has_value()) << "round " << r;
  }
  EXPECT_FALSE(dog.observe(sample(5)).has_value());  // norm_spread unset.
  RoundSample third = sample(6);
  third.norm_spread = 1.0;
  const auto alarm = dog.observe(third);
  ASSERT_TRUE(alarm.has_value());
  EXPECT_EQ(alarm->rule, "spread_collapse");
  EXPECT_EQ(alarm->round, 6);
  EXPECT_DOUBLE_EQ(alarm->value, 1.0);
}

TEST(Watchdog, SpreadRuleIsOffByDefault) {
  Watchdog dog;  // spread_floor defaults to -1: disabled.
  for (int r = 0; r < 10; ++r) {
    RoundSample s = sample(r);
    s.norm_spread = 1.0;  // Fully collapsed spread every round.
    EXPECT_FALSE(dog.observe(s).has_value()) << "round " << r;
  }
  EXPECT_FALSE(dog.tripped());
}

TEST(Watchdog, KeepsObservingAfterATrip) {
  WatchdogConfig config;
  config.qr_threshold = 0.5;
  config.qr_window = 1;
  Watchdog dog(config);
  RoundSample bad = sample(0);
  bad.qr = 0.1;
  EXPECT_TRUE(dog.observe(bad).has_value());
  bad.round = 1;
  EXPECT_TRUE(dog.observe(bad).has_value());
  EXPECT_EQ(dog.alarms().size(), 2u);
  EXPECT_TRUE(dog.tripped());
}

}  // namespace
}  // namespace fedwcm::obs
