// Run-history store (obs/runstore.hpp): deterministic record serialization,
// strict artifact-file round-trips, machine-partitioned append/load, and the
// hostile-wire contract *through the store path* — truncated, bit-flipped,
// and checksum-consistent-but-invalid frames must be rejected and counted,
// never abort a load, never corrupt neighboring records (the core/test_quant
// contract extended to the persistence layer).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "fedwcm/core/serialize.hpp"
#include "fedwcm/obs/machine.hpp"
#include "fedwcm/obs/runstore.hpp"
#include "fedwcm/obs/sketch.hpp"

namespace {

using fedwcm::core::BinaryReader;
using fedwcm::core::BinaryWriter;
using fedwcm::obs::MachineFingerprint;
using fedwcm::obs::QuantileSketch;
using fedwcm::obs::RunRecord;
using fedwcm::obs::RunStore;

MachineFingerprint fake_machine(const std::string& cpu) {
  MachineFingerprint m;
  m.cpu_model = cpu;
  m.cores = 4;
  m.kernel = "Linux test";
  return m;
}

RunRecord sample_record(std::size_t i, const std::string& cpu = "Test CPU A") {
  RunRecord r;
  r.kind = (i % 2 == 0) ? "run" : "bench";
  r.created_us = 1'000'000ull * (i + 1);
  r.config_fingerprint = "cfg-" + std::to_string(i % 3);
  r.flags = "--seed " + std::to_string(i);
  r.machine = fake_machine(cpu);
  r.metrics["final_accuracy"] = 0.8 + 0.001 * double(i);
  r.metrics["wall_ms"] = 100.0 * double(i + 1);
  r.counters["rounds"] = 10 + i;
  QuantileSketch s(0.01);
  for (std::size_t k = 0; k <= i; ++k) s.observe(double(k + 1) * 0.25);
  r.sketches.emplace_back("pop.update_norm", std::move(s));
  return r;
}

std::string read_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  std::ostringstream buf;
  buf << is.rdbuf();
  return buf.str();
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  os.write(bytes.data(), std::streamsize(bytes.size()));
}

/// A store in a fresh subdirectory of the gtest temp dir, with the partition
/// of `machine_id` wiped so repeated runs start clean.
RunStore fresh_store(const std::string& name, const std::string& machine_id) {
  RunStore store(testing::TempDir() + "/runstore_" + name);
  std::remove(store.partition_path(machine_id).c_str());
  return store;
}

/// Replaces frame `index` of a partition file with a frame whose payload was
/// transformed by `mutate` and whose checksum is *recomputed to match* — so
/// the corruption penetrates past the checksum into the deserializer.
template <typename Fn>
void rewrite_frame(const std::string& path, std::size_t index, Fn mutate) {
  const std::string bytes = read_file(path);
  std::size_t offset = 8;
  for (std::size_t skipped = 0; skipped < index; ++skipped) {
    std::istringstream is(bytes.substr(offset, 8), std::ios::binary);
    BinaryReader r(is);
    offset += 16 + std::size_t(r.read_u64());
  }
  std::istringstream is(bytes.substr(offset, 8), std::ios::binary);
  BinaryReader r(is);
  const std::uint64_t len = r.read_u64();
  std::string payload = bytes.substr(offset + 16, len);
  mutate(payload);
  std::ostringstream frame(std::ios::binary);
  BinaryWriter w(frame);
  w.write_u64(payload.size());
  w.write_u64(fedwcm::obs::fnv1a64(payload.data(), payload.size()));
  w.write_bytes(payload.data(), payload.size());
  write_file(path, bytes.substr(0, offset) + frame.str() +
                       bytes.substr(offset + 16 + len));
}

// ---------------------------------------------------------------------------
// Machine fingerprint

TEST(MachineFingerprint, IdIsDeterministicAnd16Hex) {
  const MachineFingerprint m = fake_machine("Test CPU A");
  const std::string id = m.id();
  EXPECT_EQ(id.size(), 16u);
  EXPECT_EQ(id.find_first_not_of("0123456789abcdef"), std::string::npos);
  EXPECT_EQ(id, fake_machine("Test CPU A").id());
  EXPECT_NE(id, fake_machine("Test CPU B").id());
  MachineFingerprint more_cores = m;
  more_cores.cores = 64;
  EXPECT_NE(id, more_cores.id());
}

TEST(MachineFingerprint, HostFingerprintIsPopulatedAndStable) {
  const MachineFingerprint m = fedwcm::obs::machine_fingerprint();
  EXPECT_GT(m.cores, 0u);
  EXPECT_FALSE(m.kernel.empty());
  EXPECT_EQ(m.id(), fedwcm::obs::machine_fingerprint().id());
}

// ---------------------------------------------------------------------------
// Record serialization

TEST(RunRecord, BytesRoundTripBitwise) {
  for (std::size_t i = 0; i < 4; ++i) {
    const RunRecord r = sample_record(i);
    const std::string bytes = fedwcm::obs::record_to_bytes(r);
    const RunRecord back = fedwcm::obs::record_from_bytes(bytes);
    EXPECT_EQ(fedwcm::obs::record_to_bytes(back), bytes) << "record " << i;
    EXPECT_EQ(back.kind, r.kind);
    EXPECT_EQ(back.created_us, r.created_us);
    EXPECT_EQ(back.config_fingerprint, r.config_fingerprint);
    EXPECT_EQ(back.flags, r.flags);
    EXPECT_EQ(back.machine.id(), r.machine.id());
    EXPECT_EQ(back.metrics, r.metrics);
    EXPECT_EQ(back.counters, r.counters);
    ASSERT_EQ(back.sketches.size(), 1u);
    EXPECT_EQ(back.sketches[0].first, "pop.update_norm");
    EXPECT_EQ(back.sketches[0].second.count(), r.sketches[0].second.count());
  }
}

TEST(RunRecord, ValueOfFoldsMetricsAndCounters) {
  const RunRecord r = sample_record(2);
  double value = 0.0;
  ASSERT_TRUE(r.value_of("final_accuracy", value));
  EXPECT_DOUBLE_EQ(value, 0.802);
  ASSERT_TRUE(r.value_of("rounds", value));
  EXPECT_DOUBLE_EQ(value, 12.0);
  EXPECT_FALSE(r.value_of("no_such_metric", value));
}

TEST(RunRecord, FromBytesRejectsTruncationAndBadVersion) {
  const std::string bytes = fedwcm::obs::record_to_bytes(sample_record(1));
  for (const std::size_t keep : {std::size_t(3), bytes.size() / 2,
                                 bytes.size() - 1})
    EXPECT_THROW(fedwcm::obs::record_from_bytes(bytes.substr(0, keep)),
                 std::exception)
        << "kept " << keep << " of " << bytes.size();
  EXPECT_THROW(fedwcm::obs::record_from_bytes(bytes + "x"), std::exception);
  std::string wrong_version = bytes;
  wrong_version[0] = char(0x7f);
  EXPECT_THROW(fedwcm::obs::record_from_bytes(wrong_version), std::exception);
}

// ---------------------------------------------------------------------------
// Standalone artifact files (the CI upload unit)

TEST(RecordFile, RoundTripsAndIsStrict) {
  const std::string path = testing::TempDir() + "/record_artifact.fwrh";
  const RunRecord r = sample_record(3);
  std::string error;
  ASSERT_TRUE(fedwcm::obs::save_record_file(path, r, error)) << error;
  RunRecord back;
  ASSERT_TRUE(fedwcm::obs::load_record_file(path, back, error)) << error;
  EXPECT_EQ(fedwcm::obs::record_to_bytes(back), fedwcm::obs::record_to_bytes(r));

  // Unlike store loads, an artifact file has no healthy neighbors: any
  // defect is an error, not a skip.
  const std::string bytes = read_file(path);
  write_file(path, bytes.substr(0, bytes.size() - 5));
  EXPECT_FALSE(fedwcm::obs::load_record_file(path, back, error));
  std::string flipped = bytes;
  flipped[bytes.size() / 2] ^= 0x01;
  write_file(path, flipped);
  EXPECT_FALSE(fedwcm::obs::load_record_file(path, back, error));
  write_file(path, bytes + "trailing");
  EXPECT_FALSE(fedwcm::obs::load_record_file(path, back, error));
}

// ---------------------------------------------------------------------------
// Store append/load

TEST(RunStore, AppendsLoadInOrderAndPartitionsByMachine) {
  const std::string id_a = fake_machine("Test CPU A").id();
  const std::string id_b = fake_machine("Test CPU B").id();
  RunStore store = fresh_store("partition", id_a);
  std::remove(store.partition_path(id_b).c_str());
  std::string error;
  for (std::size_t i = 0; i < 5; ++i)
    ASSERT_TRUE(store.append(sample_record(i), error)) << error;
  ASSERT_TRUE(store.append(sample_record(7, "Test CPU B"), error)) << error;

  RunStore::LoadResult a, b;
  ASSERT_TRUE(store.load(id_a, a, error)) << error;
  ASSERT_TRUE(store.load(id_b, b, error)) << error;
  EXPECT_EQ(a.rejected, 0u);
  ASSERT_EQ(a.records.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i)
    EXPECT_EQ(a.records[i].created_us, 1'000'000ull * (i + 1));
  ASSERT_EQ(b.records.size(), 1u);
  EXPECT_EQ(b.records[0].machine.cpu_model, "Test CPU B");

  const std::vector<std::string> ids = store.machine_ids();
  EXPECT_NE(std::find(ids.begin(), ids.end(), id_a), ids.end());
  EXPECT_NE(std::find(ids.begin(), ids.end(), id_b), ids.end());
}

TEST(RunStore, MissingPartitionIsEmptyNotError) {
  RunStore store(testing::TempDir() + "/runstore_missing");
  RunStore::LoadResult loaded;
  std::string error;
  ASSERT_TRUE(store.load("0123456789abcdef", loaded, error)) << error;
  EXPECT_TRUE(loaded.records.empty());
  EXPECT_EQ(loaded.rejected, 0u);
}

TEST(RunStore, RefusesToClobberAForeignFile) {
  const std::string id = fake_machine("Test CPU A").id();
  RunStore store = fresh_store("foreign", id);
  std::string error;
  ASSERT_TRUE(store.append(sample_record(0), error)) << error;
  write_file(store.partition_path(id), "this is not a FWRH file");
  EXPECT_FALSE(store.append(sample_record(1), error));
  RunStore::LoadResult loaded;
  EXPECT_FALSE(store.load(id, loaded, error));
}

// ---------------------------------------------------------------------------
// Hostile wire through the store path

TEST(RunStore, TornTailIsCountedOnceAndPriorRecordsSurvive) {
  const std::string id = fake_machine("Test CPU A").id();
  RunStore store = fresh_store("torn", id);
  std::string error;
  for (std::size_t i = 0; i < 3; ++i)
    ASSERT_TRUE(store.append(sample_record(i), error)) << error;
  const std::string path = store.partition_path(id);
  {
    // Half a frame header: a length prefix promising bytes that aren't there.
    std::ofstream os(path, std::ios::binary | std::ios::app);
    BinaryWriter w(os);
    w.write_u64(1u << 20);
    w.write_u64(0xdeadbeefull);
    w.write_bytes("torn", 4);
  }
  RunStore::LoadResult loaded;
  ASSERT_TRUE(store.load(id, loaded, error)) << error;
  EXPECT_EQ(loaded.records.size(), 3u);
  EXPECT_EQ(loaded.rejected, 1u);

  // A sub-header-sized straggler (crash even earlier in the append) counts
  // the same way. Drop the 20-byte torn tail first, then leave 7 bytes.
  const std::string bytes = read_file(path);
  write_file(path, bytes.substr(0, bytes.size() - 20) + std::string(7, 'U'));
  ASSERT_TRUE(store.load(id, loaded, error)) << error;
  EXPECT_EQ(loaded.records.size(), 3u);
  EXPECT_EQ(loaded.rejected, 1u);
}

TEST(RunStore, AppendAfterTornTailDropsOnlyTheTail) {
  const std::string id = fake_machine("Test CPU A").id();
  RunStore store = fresh_store("recover", id);
  std::string error;
  for (std::size_t i = 0; i < 3; ++i)
    ASSERT_TRUE(store.append(sample_record(i), error)) << error;
  const std::string path = store.partition_path(id);
  write_file(path + ".tmp", "stale tmp from a crashed append");
  {
    std::ofstream os(path, std::ios::binary | std::ios::app);
    BinaryWriter w(os);
    w.write_u64(1u << 30);
  }
  ASSERT_TRUE(store.append(sample_record(3), error)) << error;
  RunStore::LoadResult loaded;
  ASSERT_TRUE(store.load(id, loaded, error)) << error;
  EXPECT_EQ(loaded.records.size(), 4u);
  EXPECT_EQ(loaded.rejected, 0u);
}

TEST(RunStore, BitFlippedPayloadIsSkippedAndNeighborsLoad) {
  const std::string id = fake_machine("Test CPU A").id();
  RunStore store = fresh_store("bitflip", id);
  std::string error;
  for (std::size_t i = 0; i < 3; ++i)
    ASSERT_TRUE(store.append(sample_record(i), error)) << error;
  // Plain bit flip, checksum left stale: caught by the checksum, and the
  // frames after it still load (no lost frame sync).
  const std::string path = store.partition_path(id);
  {
    std::string bytes = read_file(path);
    std::istringstream is(bytes.substr(8), std::ios::binary);
    BinaryReader r(is);
    const std::uint64_t len0 = r.read_u64();
    bytes[8 + 16 + len0 + 16 + 4] ^= 0x10;  // Inside frame 1's payload.
    write_file(path, bytes);
  }
  RunStore::LoadResult loaded;
  ASSERT_TRUE(store.load(id, loaded, error)) << error;
  EXPECT_EQ(loaded.records.size(), 2u);
  EXPECT_EQ(loaded.rejected, 1u);
  EXPECT_EQ(loaded.records[0].created_us, 1'000'000ull);
  EXPECT_EQ(loaded.records[1].created_us, 3'000'000ull);
}

TEST(RunStore, ChecksumConsistentTruncationReachesTheSketchDeserializer) {
  const std::string id = fake_machine("Test CPU A").id();
  RunStore store = fresh_store("sketchcut", id);
  std::string error;
  for (std::size_t i = 0; i < 3; ++i)
    ASSERT_TRUE(store.append(sample_record(i), error)) << error;
  // The record payload *ends* with the serialized QuantileSketch, so cutting
  // the last bytes and recomputing a valid checksum makes the corruption
  // invisible to the framing layer — it must be caught by the sketch
  // deserializer throwing inside record_from_bytes, and counted.
  rewrite_frame(store.partition_path(id), 1, [](std::string& payload) {
    payload.resize(payload.size() - 6);
  });
  RunStore::LoadResult loaded;
  ASSERT_TRUE(store.load(id, loaded, error)) << error;
  EXPECT_EQ(loaded.records.size(), 2u);
  EXPECT_EQ(loaded.rejected, 1u);
}

TEST(RunStore, ChecksumConsistentCountBombIsRejected) {
  const std::string id = fake_machine("Test CPU A").id();
  RunStore store = fresh_store("countbomb", id);
  std::string error;
  for (std::size_t i = 0; i < 2; ++i)
    ASSERT_TRUE(store.append(sample_record(i), error)) << error;
  // Blow up the sketch-count field (the final u64-count in the payload,
  // located via a sketch-free twin record whose prefix is byte-identical):
  // a count promising more entries than the remaining payload could hold
  // must be rejected before any allocation, not trusted.
  RunRecord twin = sample_record(0);
  twin.sketches.clear();
  const std::size_t count_offset =
      fedwcm::obs::record_to_bytes(twin).size() - 8;
  rewrite_frame(store.partition_path(id), 0, [&](std::string& payload) {
    payload[count_offset + 7] ^= 0x40;
  });
  RunStore::LoadResult loaded;
  ASSERT_TRUE(store.load(id, loaded, error)) << error;
  EXPECT_EQ(loaded.records.size(), 1u);
  EXPECT_EQ(loaded.rejected, 1u);
}

// ---------------------------------------------------------------------------
// Ingest: metrics JSONL

TEST(RunStoreIngest, MetricsJsonlMapsKindsAndRejectsTornLines) {
  RunRecord record;
  std::string error;
  const std::string text =
      "{\"metric\":\"comm.bytes_up\",\"type\":\"counter\",\"value\":123}\n"
      "{\"metric\":\"round.accuracy\",\"type\":\"gauge\",\"value\":0.5}\n"
      "{\"metric\":\"pop.norm\",\"type\":\"sketch\",\"count\":4,"
      "\"mean\":1.5,\"p50\":1.0,\"p95\":3.0}\n";
  ASSERT_TRUE(fedwcm::obs::ingest_metrics_jsonl(text, record, error)) << error;
  EXPECT_EQ(record.counters.at("comm.bytes_up"), 123u);
  EXPECT_DOUBLE_EQ(record.metrics.at("round.accuracy"), 0.5);
  EXPECT_EQ(record.counters.at("pop.norm.count"), 4u);
  EXPECT_DOUBLE_EQ(record.metrics.at("pop.norm.p95"), 3.0);

  RunRecord torn_record;
  EXPECT_FALSE(fedwcm::obs::ingest_metrics_jsonl(
      "{\"metric\":\"comm.bytes_up\",\"type\":\"counter\",\"va", torn_record,
      error));
  EXPECT_FALSE(error.empty());
}

}  // namespace
