// Population sketches (obs/sketch.hpp): the merge-of-shards == single-stream
// gate the whole design exists for, quantile accuracy against exact sorts,
// SpaceSaving exactness and error bounds, reservoir determinism, wire-format
// round-trips with hardened rejection, and the PopulationStore tables.
//
// The bitwise gates serialize both sketches and compare the byte strings.
// Counts and buckets are integers, so they merge exactly by construction; the
// running `sum` is a double accumulation, so the gates feed dyadic values
// (multiples of 1/32 with small magnitude) whose partial sums are all exactly
// representable — addition order then provably cannot change the bits.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "fedwcm/core/rng.hpp"
#include "fedwcm/core/serialize.hpp"
#include "fedwcm/obs/sketch.hpp"

namespace {

using fedwcm::core::BinaryReader;
using fedwcm::core::BinaryWriter;
using fedwcm::obs::PopulationStore;
using fedwcm::obs::QuantileSketch;
using fedwcm::obs::ReservoirSketch;
using fedwcm::obs::TopKSketch;

template <typename Sketch>
std::string bytes_of(const Sketch& s) {
  std::ostringstream os;
  BinaryWriter w(os);
  s.serialize(w);
  return os.str();
}

template <typename Sketch>
Sketch reload(const Sketch& s) {
  std::istringstream is(bytes_of(s));
  BinaryReader r(is);
  return Sketch::deserialize(r);
}

/// Deterministic dyadic test stream: multiples of 1/32 in [-100/32, 100/32],
/// mixing negatives, zeros, and positives.
double dyadic_value(std::size_t i) {
  return double(int((i * 37) % 201) - 100) / 32.0;
}

// ---------------------------------------------------------------------------
// QuantileSketch

TEST(QuantileSketch, EmptyReportsNaN) {
  QuantileSketch s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.sum(), 0.0);
  EXPECT_TRUE(std::isnan(s.quantile(0.5)));
  EXPECT_TRUE(std::isnan(s.min()));
  EXPECT_TRUE(std::isnan(s.max()));
}

TEST(QuantileSketch, IgnoresNonFinite) {
  QuantileSketch s;
  s.observe(std::nan(""));
  s.observe(std::numeric_limits<double>::infinity());
  s.observe(-std::numeric_limits<double>::infinity());
  EXPECT_EQ(s.count(), 0u);
  s.observe(1.0);
  EXPECT_EQ(s.count(), 1u);
}

TEST(QuantileSketch, ExtremesAreExact) {
  QuantileSketch s;
  for (std::size_t i = 0; i < 500; ++i) s.observe(dyadic_value(i));
  std::vector<double> exact;
  for (std::size_t i = 0; i < 500; ++i) exact.push_back(dyadic_value(i));
  std::sort(exact.begin(), exact.end());
  EXPECT_EQ(s.quantile(0.0), exact.front());
  EXPECT_EQ(s.quantile(1.0), exact.back());
  EXPECT_EQ(s.min(), exact.front());
  EXPECT_EQ(s.max(), exact.back());
}

TEST(QuantileSketch, QuantilesWithinRelativeErrorOfExactSort) {
  const double a = 0.01;
  QuantileSketch s(a);
  std::vector<double> exact;
  fedwcm::core::SplitMix64 rng{2024};
  for (int i = 0; i < 4000; ++i) {
    const double v = 1.0 + double(rng.next() % 100000) / 100.0;
    s.observe(v);
    exact.push_back(v);
  }
  std::sort(exact.begin(), exact.end());
  for (double q : {0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99}) {
    const double rank = q * double(exact.size() - 1);
    const double truth = exact[std::size_t(rank)];
    // Bucket-boundary rounding can shift one bucket; 2a covers it.
    EXPECT_NEAR(s.quantile(q), truth, 2.0 * a * truth) << "q=" << q;
  }
}

TEST(QuantileSketch, SignedAndZeroValuesWalkInOrder) {
  QuantileSketch s;
  // 3 negatives, 2 zeros, 3 positives: the quantile walk must traverse
  // negatives (most negative first), then zeros, then positives.
  for (double v : {-8.0, -2.0, -0.5, 0.0, 0.0, 0.5, 2.0, 8.0}) s.observe(v);
  EXPECT_EQ(s.quantile(0.0), -8.0);  // Endpoints are exact extremes.
  EXPECT_EQ(s.quantile(1.0), 8.0);
  EXPECT_NEAR(s.quantile(0.125), -8.0, 0.2);  // rank 0.875 -> the -8 bucket.
  EXPECT_EQ(s.quantile(0.5), 0.0);            // rank 3.5 -> the zero run.
  EXPECT_NEAR(s.quantile(0.875), 2.0, 0.1);   // rank 6.125 -> the 2 bucket.
}

TEST(QuantileSketch, MergeOfShardsIsBitwiseEqualToSingleStream) {
  const std::size_t kN = 1000;
  QuantileSketch single;
  for (std::size_t i = 0; i < kN; ++i) single.observe(dyadic_value(i));
  const std::string expected = bytes_of(single);
  for (std::size_t shards : {1u, 2u, 3u, 5u, 8u}) {
    std::vector<QuantileSketch> parts(shards);
    for (std::size_t i = 0; i < kN; ++i)
      parts[i % shards].observe(dyadic_value(i));
    // Merge in reverse shard order too: associativity/commutativity must not
    // matter for the serialized state.
    QuantileSketch merged;
    for (auto it = parts.rbegin(); it != parts.rend(); ++it) merged.merge(*it);
    EXPECT_EQ(bytes_of(merged), expected) << shards << " shards";
  }
}

TEST(QuantileSketch, MemoryStaysBoundedUnderMillionsOfObservations) {
  QuantileSketch s;
  fedwcm::core::SplitMix64 rng{7};
  for (int i = 0; i < 200000; ++i)
    s.observe(1e-3 + double(rng.next() % 1000000) / 1000.0);
  // Log-bucketing: bucket count tracks the observed dynamic range, not the
  // observation count.
  EXPECT_LT(s.bucket_count(), 2200u);
  EXPECT_EQ(s.count(), 200000u);
}

TEST(QuantileSketch, SerializeRoundTrips) {
  QuantileSketch s(0.02);
  for (std::size_t i = 0; i < 300; ++i) s.observe(dyadic_value(i));
  const QuantileSketch back = reload(s);
  EXPECT_EQ(bytes_of(back), bytes_of(s));
  EXPECT_EQ(back.count(), s.count());
  EXPECT_EQ(back.quantile(0.5), s.quantile(0.5));
}

TEST(QuantileSketch, DeserializeRejectsGarbage) {
  QuantileSketch s;
  s.observe(1.0);
  std::string good = bytes_of(s);
  {  // Bad magic.
    std::string tampered = good;
    tampered[0] = 'X';
    std::istringstream is(tampered);
    BinaryReader r(is);
    EXPECT_THROW(QuantileSketch::deserialize(r), std::runtime_error);
  }
  {  // Truncated.
    std::istringstream is(good.substr(0, good.size() / 2));
    BinaryReader r(is);
    EXPECT_THROW(QuantileSketch::deserialize(r), std::runtime_error);
  }
  {  // Bucket totals disagreeing with count: count_ is the u64 after
     // magic(4) + version(4) + relative_error(8); flip its low byte.
    std::string tampered = good;
    tampered[16] = char(0x7F);
    std::istringstream is(tampered);
    BinaryReader r(is);
    EXPECT_THROW(QuantileSketch::deserialize(r), std::runtime_error);
  }
}

// ---------------------------------------------------------------------------
// TopKSketch

TEST(TopKSketch, ExactWithinCapacity) {
  TopKSketch s(4);
  s.offer(10, 2.0);
  s.offer(20, 5.0);
  s.offer(10, 1.0);
  s.offer(30, 4.0);
  EXPECT_FALSE(s.saturated());
  EXPECT_EQ(s.offered(), 4u);
  const auto top = s.top();
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].key, 20u);
  EXPECT_EQ(top[0].weight, 5.0);
  EXPECT_EQ(top[0].error, 0.0);
  EXPECT_EQ(top[1].key, 30u);
  EXPECT_EQ(top[2].key, 10u);
  EXPECT_EQ(top[2].weight, 3.0);
}

TEST(TopKSketch, IgnoresInvalidWeights) {
  TopKSketch s(4);
  s.offer(1, 0.0);
  s.offer(1, -2.0);
  s.offer(1, std::nan(""));
  EXPECT_EQ(s.offered(), 0u);
  EXPECT_EQ(s.top().size(), 0u);
}

TEST(TopKSketch, SaturationKeepsHeavyHittersWithErrorBound) {
  TopKSketch s(3);
  // True heavy hitters 1, 2, 3; noise keys 100..149 with weight 1 each.
  std::vector<double> truth(200, 0.0);
  auto offer = [&](std::uint64_t k, double w) {
    s.offer(k, w);
    truth[k] += w;
  };
  for (int rep = 0; rep < 20; ++rep) {
    offer(1, 10.0);
    offer(2, 8.0);
    offer(3, 6.0);
  }
  for (std::uint64_t k = 100; k < 150; ++k) offer(k, 1.0);
  EXPECT_TRUE(s.saturated());
  const auto top = s.top();
  ASSERT_EQ(top.size(), 3u);
  for (const auto& e : top) {
    // SpaceSaving invariant: weight is an overestimate, within error.
    EXPECT_GE(e.weight, truth[e.key]);
    EXPECT_LE(e.weight - e.error, truth[e.key] + 1e-12);
  }
  // The dominant key must survive the noise.
  EXPECT_EQ(top[0].key, 1u);
}

TEST(TopKSketch, MergeOfShardsIsBitwiseEqualWhileExact) {
  // 12 distinct keys, capacity 16: no shard and no merge ever evicts, so the
  // merge must reproduce single-stream state bitwise.
  const std::size_t kN = 600;
  auto key_of = [](std::size_t i) { return std::uint64_t(i % 12); };
  auto weight_of = [](std::size_t i) { return double((i % 7) + 1) / 4.0; };
  TopKSketch single(16);
  for (std::size_t i = 0; i < kN; ++i) single.offer(key_of(i), weight_of(i));
  const std::string expected = bytes_of(single);
  for (std::size_t shards : {2u, 3u, 5u}) {
    std::vector<TopKSketch> parts(shards, TopKSketch(16));
    for (std::size_t i = 0; i < kN; ++i)
      parts[i % shards].offer(key_of(i), weight_of(i));
    TopKSketch merged(16);
    for (auto it = parts.rbegin(); it != parts.rend(); ++it) merged.merge(*it);
    EXPECT_EQ(bytes_of(merged), expected) << shards << " shards";
  }
}

TEST(TopKSketch, MergeAfterSaturationKeepsOverestimateInvariant) {
  std::vector<double> truth(400, 0.0);
  TopKSketch a(4), b(4);
  fedwcm::core::SplitMix64 rng{99};
  for (int i = 0; i < 300; ++i) {
    const std::uint64_t k = rng.next() % 40;
    const double w = double(rng.next() % 8 + 1);
    (i % 2 ? a : b).offer(k, w);
    truth[k] += w;
  }
  a.merge(b);
  EXPECT_TRUE(a.saturated());
  for (const auto& e : a.top()) {
    EXPECT_GE(e.weight + 1e-9, truth[e.key]);
    EXPECT_LE(e.weight - e.error, truth[e.key] + 1e-9);
  }
}

TEST(TopKSketch, SerializeRoundTripsAndRejectsGarbage) {
  TopKSketch s(3);
  for (std::uint64_t k = 0; k < 9; ++k) s.offer(k, double(k + 1));
  const TopKSketch back = reload(s);
  EXPECT_EQ(bytes_of(back), bytes_of(s));
  EXPECT_EQ(back.saturated(), s.saturated());
  EXPECT_EQ(back.offered(), s.offered());

  std::string tampered = bytes_of(s);
  tampered[0] = 'X';
  std::istringstream is(tampered);
  BinaryReader r(is);
  EXPECT_THROW(TopKSketch::deserialize(r), std::runtime_error);
}

// ---------------------------------------------------------------------------
// ReservoirSketch

TEST(ReservoirSketch, KeptSetIsOrderInsensitive) {
  ReservoirSketch fwd(8, 42), rev(8, 42);
  for (std::uint64_t id = 0; id < 100; ++id) fwd.offer(id, double(id));
  for (std::uint64_t id = 100; id-- > 0;) rev.offer(id, double(id));
  EXPECT_EQ(bytes_of(fwd), bytes_of(rev));
  EXPECT_EQ(fwd.sample().size(), 8u);
  EXPECT_EQ(fwd.seen(), 100u);
}

TEST(ReservoirSketch, SeedChangesTheSample) {
  ReservoirSketch a(8, 1), b(8, 2);
  for (std::uint64_t id = 0; id < 100; ++id) {
    a.offer(id, 0.0);
    b.offer(id, 0.0);
  }
  std::vector<std::uint64_t> ids_a, ids_b;
  for (const auto& item : a.sample()) ids_a.push_back(item.id);
  for (const auto& item : b.sample()) ids_b.push_back(item.id);
  EXPECT_NE(ids_a, ids_b);
}

TEST(ReservoirSketch, DuplicateIdKeepsMinValue) {
  ReservoirSketch s(4, 7);
  s.offer(3, 5.0);
  s.offer(3, 2.0);
  s.offer(3, 9.0);
  ASSERT_EQ(s.sample().size(), 1u);
  EXPECT_EQ(s.sample()[0].value, 2.0);
  EXPECT_EQ(s.seen(), 3u);
}

TEST(ReservoirSketch, MergeOfShardsIsBitwiseEqualToSingleStream) {
  const std::size_t kN = 500;
  ReservoirSketch single(16, 123);
  for (std::size_t i = 0; i < kN; ++i)
    single.offer(i % 300, dyadic_value(i));
  const std::string expected = bytes_of(single);
  for (std::size_t shards : {2u, 4u, 7u}) {
    std::vector<ReservoirSketch> parts(shards, ReservoirSketch(16, 123));
    for (std::size_t i = 0; i < kN; ++i)
      parts[i % shards].offer(i % 300, dyadic_value(i));
    ReservoirSketch merged(16, 123);
    for (auto it = parts.rbegin(); it != parts.rend(); ++it) merged.merge(*it);
    EXPECT_EQ(bytes_of(merged), expected) << shards << " shards";
  }
}

TEST(ReservoirSketch, DeserializeRejectsForgedPriorities) {
  ReservoirSketch s(4, 11);
  for (std::uint64_t id = 0; id < 20; ++id) s.offer(id, 1.0);
  std::string good = bytes_of(s);
  // Items start after magic(4)+version(4)+capacity(8)+seed(8)+seen(8)+n(8);
  // corrupt the first item's priority.
  std::string tampered = good;
  tampered[40] = char(tampered[40] ^ 0x5A);
  std::istringstream is(tampered);
  BinaryReader r(is);
  EXPECT_THROW(ReservoirSketch::deserialize(r), std::runtime_error);
}

// ---------------------------------------------------------------------------
// PopulationStore

TEST(PopulationStore, DisabledOffersAreIgnored) {
  PopulationStore& store = fedwcm::obs::population();
  store.reset();
  store.set_enabled(false);
  store.topk_offer("pop.test_ignored", 1, 1.0);
  store.reservoir_offer("pop.test_ignored_sample", 1, 1.0);
  EXPECT_TRUE(store.top_tables().empty());
  EXPECT_TRUE(store.sample_tables().empty());
}

TEST(PopulationStore, TablesAndPrometheusExposition) {
  PopulationStore& store = fedwcm::obs::population();
  store.reset();
  store.set_enabled(true);
  store.set_seed(5);
  store.topk_offer("pop.test_faulty", 42, 3.0);
  store.topk_offer("pop.test_faulty", 42, 1.0);
  store.topk_offer("pop.test_faulty", 7);
  store.reservoir_offer("pop.test_norms", 9, 0.5);

  const auto tops = store.top_tables();
  ASSERT_EQ(tops.size(), 1u);
  EXPECT_EQ(tops[0].name, "pop.test_faulty");
  EXPECT_EQ(tops[0].offered, 3u);
  ASSERT_EQ(tops[0].entries.size(), 2u);
  EXPECT_EQ(tops[0].entries[0].key, 42u);
  EXPECT_EQ(tops[0].entries[0].weight, 4.0);

  const auto samples = store.sample_tables();
  ASSERT_EQ(samples.size(), 1u);
  EXPECT_EQ(samples[0].items.size(), 1u);
  EXPECT_EQ(samples[0].items[0].id, 9u);

  std::ostringstream os;
  store.write_prometheus(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("# TYPE fedwcm_pop_test_faulty gauge"), std::string::npos);
  EXPECT_NE(text.find("fedwcm_pop_test_faulty{client=\"42\"} 4"),
            std::string::npos);

  store.reset();
  store.set_enabled(false);
  EXPECT_TRUE(store.top_tables().empty());
}

}  // namespace
