// Prometheus text exposition: writer output must satisfy the in-tree strict
// validator, and the validator must actually reject malformed payloads.
#include <gtest/gtest.h>

#include <limits>
#include <sstream>

#include "fedwcm/obs/metrics.hpp"
#include "fedwcm/obs/promtext.hpp"

namespace fedwcm::obs {
namespace {

TEST(Prometheus, NameSanitization) {
  EXPECT_EQ(prometheus_name("round.wall_ms"), "fedwcm_round_wall_ms");
  EXPECT_EQ(prometheus_name("comm.bytes_up"), "fedwcm_comm_bytes_up");
  EXPECT_EQ(prometheus_name("weird name!"), "fedwcm_weird_name_");
  EXPECT_EQ(prometheus_name("9lives"), "fedwcm__9lives");
}

TEST(Prometheus, WriterOutputValidates) {
  Registry reg;
  reg.set_enabled(true);
  reg.counter("round.count").add(12);
  reg.gauge("live.round").set(11.0);
  Histogram h = reg.histogram("round.wall_ms", time_buckets_ms());
  for (double v : {0.2, 3.0, 3.0, 40.0, 900.0}) h.observe(v);
  std::ostringstream os;
  reg.write_prometheus(os);
  const std::string text = os.str();
  std::string error;
  EXPECT_TRUE(validate_prometheus_text(text, error)) << error;
  EXPECT_NE(text.find("# TYPE fedwcm_round_count counter"), std::string::npos);
  EXPECT_NE(text.find("fedwcm_round_count 12"), std::string::npos);
  EXPECT_NE(text.find("# TYPE fedwcm_round_wall_ms histogram"),
            std::string::npos);
  EXPECT_NE(text.find("fedwcm_round_wall_ms_bucket{le=\"+Inf\"} 5"),
            std::string::npos);
  EXPECT_NE(text.find("fedwcm_round_wall_ms_count 5"), std::string::npos);
}

TEST(Prometheus, LabeledSeriesGroupIntoOneFamilyAndValidate) {
  Registry reg;
  reg.set_enabled(true);
  reg.counter("threadpool.tasks", {{"pool", "simulation"}}).add(7);
  reg.counter("threadpool.tasks", {{"pool", "eval"}}).add(3);
  reg.gauge("threadpool.depth", {{"pool", "simulation"}}).set(2.0);
  std::ostringstream os;
  reg.write_prometheus(os);
  const std::string text = os.str();
  std::string error;
  EXPECT_TRUE(validate_prometheus_text(text, error)) << error;
  EXPECT_NE(text.find("fedwcm_threadpool_tasks{pool=\"simulation\"} 7"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("fedwcm_threadpool_tasks{pool=\"eval\"} 3"),
            std::string::npos);
  // One TYPE line per family, no matter how many labeled series share it
  // (a duplicate would fail the strict validator above, but assert the
  // grouping explicitly too).
  std::size_t type_lines = 0, pos = 0;
  const std::string needle = "# TYPE fedwcm_threadpool_tasks counter";
  while ((pos = text.find(needle, pos)) != std::string::npos) {
    ++type_lines;
    pos += needle.size();
  }
  EXPECT_EQ(type_lines, 1u);
}

TEST(Prometheus, LabelValuesAreEscaped) {
  Registry reg;
  reg.set_enabled(true);
  reg.gauge("g", {{"path", "a\"b\\c\nd"}}).set(1.0);
  std::ostringstream os;
  reg.write_prometheus(os);
  std::string error;
  EXPECT_TRUE(validate_prometheus_text(os.str(), error))
      << error << "\n" << os.str();
  EXPECT_NE(os.str().find("path=\"a\\\"b\\\\c\\nd\""), std::string::npos)
      << os.str();
}

TEST(Prometheus, NonFiniteGaugeIsLegalExposition) {
  // Prometheus, unlike JSON, spells non-finite values out — a diverged gauge
  // must scrape as NaN, not break the payload.
  Registry reg;
  reg.set_enabled(true);
  reg.gauge("live.train_loss").set(std::numeric_limits<double>::quiet_NaN());
  reg.gauge("live.norm").set(std::numeric_limits<double>::infinity());
  std::ostringstream os;
  reg.write_prometheus(os);
  std::string error;
  EXPECT_TRUE(validate_prometheus_text(os.str(), error)) << error;
  EXPECT_NE(os.str().find("fedwcm_live_train_loss NaN"), std::string::npos);
  EXPECT_NE(os.str().find("fedwcm_live_norm +Inf"), std::string::npos);
}

TEST(Prometheus, EmptyRegistryProducesNothingButValidatorWantsNewline) {
  Registry reg;
  std::ostringstream os;
  reg.write_prometheus(os);
  EXPECT_TRUE(os.str().empty());
  std::string error;
  EXPECT_FALSE(validate_prometheus_text(os.str(), error));
}

TEST(Prometheus, ValidatorAcceptsLabelsAndTimestamps) {
  std::string error;
  EXPECT_TRUE(validate_prometheus_text(
      "# HELP m helper text\n# TYPE m gauge\nm{a=\"x\",b=\"y \\\"z\\\"\"} "
      "1.5 1712345678\n",
      error))
      << error;
}

TEST(Prometheus, ValidatorRejectsMalformedPayloads) {
  std::string error;
  // Missing trailing newline.
  EXPECT_FALSE(validate_prometheus_text("# TYPE m gauge\nm 1", error));
  // Bad metric name.
  EXPECT_FALSE(validate_prometheus_text("3m 1\n", error));
  // Unparseable value.
  EXPECT_FALSE(validate_prometheus_text("m abc\n", error));
  // Unknown type.
  EXPECT_FALSE(validate_prometheus_text("# TYPE m sparkline\nm 1\n", error));
  // Duplicate TYPE.
  EXPECT_FALSE(validate_prometheus_text(
      "# TYPE m gauge\n# TYPE m gauge\nm 1\n", error));
  // TYPE after samples.
  EXPECT_FALSE(validate_prometheus_text("m 1\n# TYPE m gauge\n", error));
  // Unterminated label value.
  EXPECT_FALSE(validate_prometheus_text("m{a=\"x} 1\n", error));
}

TEST(Prometheus, ValidatorEnforcesHistogramInvariants) {
  std::string error;
  // Decreasing cumulative counts.
  EXPECT_FALSE(validate_prometheus_text(
      "# TYPE h histogram\n"
      "h_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\n"
      "h_sum 10\nh_count 5\n",
      error));
  // Missing +Inf bucket.
  EXPECT_FALSE(validate_prometheus_text(
      "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_sum 10\nh_count 5\n",
      error));
  // _count disagreeing with the +Inf bucket.
  EXPECT_FALSE(validate_prometheus_text(
      "# TYPE h histogram\n"
      "h_bucket{le=\"1\"} 2\nh_bucket{le=\"+Inf\"} 5\nh_sum 10\nh_count 4\n",
      error));
  // Non-ascending le bounds.
  EXPECT_FALSE(validate_prometheus_text(
      "# TYPE h histogram\n"
      "h_bucket{le=\"2\"} 1\nh_bucket{le=\"1\"} 2\nh_bucket{le=\"+Inf\"} 2\n"
      "h_sum 1\nh_count 2\n",
      error));
  // And the well-formed version passes.
  EXPECT_TRUE(validate_prometheus_text(
      "# TYPE h histogram\n"
      "h_bucket{le=\"1\"} 2\nh_bucket{le=\"+Inf\"} 5\nh_sum 10\nh_count 5\n",
      error))
      << error;
}

TEST(Prometheus, SketchWritesValidSummaryFamily) {
  Registry reg;
  reg.set_enabled(true);
  Sketch s = reg.sketch("client.update_norm");
  for (double v : {0.5, 1.0, 2.0, 4.0, 8.0}) s.observe(v);
  std::ostringstream os;
  reg.write_prometheus(os);
  const std::string text = os.str();
  std::string error;
  EXPECT_TRUE(validate_prometheus_text(text, error)) << error << "\n" << text;
  EXPECT_NE(text.find("# TYPE fedwcm_client_update_norm summary"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("fedwcm_client_update_norm{quantile=\"0.5\"}"),
            std::string::npos);
  EXPECT_NE(text.find("fedwcm_client_update_norm_count 5"), std::string::npos);
}

TEST(Prometheus, EmptySketchScrapesAsNaNQuantilesAndStillValidates) {
  // NaN quantiles are the exposition format's own idiom for "no observations
  // yet" — the payload must stay scrape-able before the first round.
  Registry reg;
  reg.set_enabled(true);
  reg.sketch("client.local_loss");
  std::ostringstream os;
  reg.write_prometheus(os);
  std::string error;
  EXPECT_TRUE(validate_prometheus_text(os.str(), error)) << error;
  EXPECT_NE(os.str().find("fedwcm_client_local_loss{quantile=\"0.05\"} NaN"),
            std::string::npos)
      << os.str();
}

TEST(Prometheus, ValidatorEnforcesSummaryInvariants) {
  std::string error;
  // Quantile label outside [0,1].
  EXPECT_FALSE(validate_prometheus_text(
      "# TYPE s summary\ns{quantile=\"1.5\"} 2\ns_sum 2\ns_count 1\n", error));
  // Non-ascending quantile labels.
  EXPECT_FALSE(validate_prometheus_text(
      "# TYPE s summary\n"
      "s{quantile=\"0.9\"} 2\ns{quantile=\"0.5\"} 1\ns_sum 3\ns_count 2\n",
      error));
  // Sample without the quantile label.
  EXPECT_FALSE(validate_prometheus_text(
      "# TYPE s summary\ns 2\ns_sum 2\ns_count 1\n", error));
  // Missing _sum / _count.
  EXPECT_FALSE(validate_prometheus_text(
      "# TYPE s summary\ns{quantile=\"0.5\"} 2\n", error));
  // The well-formed version passes.
  EXPECT_TRUE(validate_prometheus_text(
      "# TYPE s summary\n"
      "s{quantile=\"0.5\"} 1\ns{quantile=\"0.9\"} 2\ns_sum 3\ns_count 2\n",
      error))
      << error;
}

}  // namespace
}  // namespace fedwcm::obs
