// HttpExporter: bind an ephemeral port, make real loopback requests, and
// assert each route's status and payload shape.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <string>

#include "fedwcm/obs/event.hpp"
#include "fedwcm/obs/http.hpp"
#include "fedwcm/obs/json.hpp"
#include "fedwcm/obs/metrics.hpp"
#include "fedwcm/obs/promtext.hpp"

namespace fedwcm::obs {
namespace {

struct Response {
  int status = 0;
  std::string headers;
  std::string body;
};

/// A blocking one-shot HTTP GET over loopback; the server closes per request.
Response http_get(std::uint16_t port, const std::string& target) {
  Response r;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return r;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return r;
  }
  const std::string request =
      "GET " + target + " HTTP/1.1\r\nHost: localhost\r\n\r\n";
  ::send(fd, request.data(), request.size(), 0);
  std::string raw;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) raw.append(buf, std::size_t(n));
  ::close(fd);
  if (raw.rfind("HTTP/1.1 ", 0) == 0) r.status = std::atoi(raw.c_str() + 9);
  const std::size_t split = raw.find("\r\n\r\n");
  if (split != std::string::npos) {
    r.headers = raw.substr(0, split);
    r.body = raw.substr(split + 4);
  }
  return r;
}

class HttpExporterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    registry_.set_enabled(true);
    bus_.set_enabled(true);
    exporter_ = std::make_unique<HttpExporter>(registry_, bus_);
    std::string error;
    ASSERT_TRUE(exporter_->start(error)) << error;
    ASSERT_NE(exporter_->port(), 0);
  }

  Registry registry_;
  EventBus bus_{64, &registry_};
  std::unique_ptr<HttpExporter> exporter_;
};

TEST_F(HttpExporterTest, MetricsEndpointServesValidExposition) {
  registry_.counter("rounds.total").add(7);
  registry_.gauge("live.qr").set(0.42);
  registry_.histogram("round.wall_ms", time_buckets_ms()).observe(12.5);
  const Response r = http_get(exporter_->port(), "/metrics");
  EXPECT_EQ(r.status, 200);
  EXPECT_NE(r.headers.find("text/plain; version=0.0.4"), std::string::npos);
  std::string error;
  EXPECT_TRUE(validate_prometheus_text(r.body, error)) << error;
  EXPECT_NE(r.body.find("fedwcm_rounds_total 7"), std::string::npos);
  EXPECT_NE(r.body.find("fedwcm_live_qr 0.42"), std::string::npos);
}

TEST_F(HttpExporterTest, HealthzFlipsTo503AndBack) {
  Response r = http_get(exporter_->port(), "/healthz");
  EXPECT_EQ(r.status, 200);
  EXPECT_EQ(r.body, "ok\n");

  exporter_->set_unhealthy("qr below threshold for 3 rounds");
  r = http_get(exporter_->port(), "/healthz");
  EXPECT_EQ(r.status, 503);
  EXPECT_EQ(r.body, "unhealthy: qr below threshold for 3 rounds\n");

  exporter_->set_healthy();
  r = http_get(exporter_->port(), "/healthz");
  EXPECT_EQ(r.status, 200);
}

TEST_F(HttpExporterTest, EventsEndpointReturnsNewestAsJson) {
  for (int i = 0; i < 10; ++i) {
    Event e;
    e.kind = EventKind::kRoundEnd;
    e.round = i;
    e.value = double(i) * 0.1;
    bus_.publish(e);
  }
  const Response r = http_get(exporter_->port(), "/events?n=3");
  EXPECT_EQ(r.status, 200);
  EXPECT_NE(r.headers.find("application/json"), std::string::npos);
  json::Value v;
  std::string error;
  ASSERT_TRUE(json::parse(r.body, v, error)) << error;
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.find("published")->as_number(), 10.0);
  EXPECT_EQ(v.find("dropped")->as_number(), 0.0);
  const json::Value* events = v.find("events");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_EQ(events->as_array().size(), 3u);
  // Newest three, oldest-first within the slice.
  EXPECT_EQ(events->as_array()[0].find("round")->as_number(), 7.0);
  EXPECT_EQ(events->as_array()[2].find("round")->as_number(), 9.0);
  EXPECT_EQ(events->as_array()[2].find("kind")->as_string(), "round_end");
}

TEST_F(HttpExporterTest, EventsEndpointDefaultsWhenQueryMalformed) {
  Event e;
  e.kind = EventKind::kRunBegin;
  bus_.publish(e);
  for (const char* target : {"/events", "/events?n=abc", "/events?n="}) {
    const Response r = http_get(exporter_->port(), target);
    EXPECT_EQ(r.status, 200) << target;
    json::Value v;
    std::string error;
    ASSERT_TRUE(json::parse(r.body, v, error)) << target << ": " << error;
    EXPECT_EQ(v.find("events")->as_array().size(), 1u) << target;
  }
}

TEST_F(HttpExporterTest, ProfileEndpointIs503UntilAProviderIsInstalled) {
  Response r = http_get(exporter_->port(), "/profile");
  EXPECT_EQ(r.status, 503);
  EXPECT_NE(r.body.find("profiling not enabled"), std::string::npos);

  exporter_->set_profile_provider(
      [] { return std::string("{\"schema\": \"fedwcm.ledger/1\"}"); });
  r = http_get(exporter_->port(), "/profile");
  EXPECT_EQ(r.status, 200);
  EXPECT_NE(r.headers.find("application/json"), std::string::npos);
  json::Value v;
  std::string error;
  ASSERT_TRUE(json::parse(r.body, v, error)) << error;
  EXPECT_EQ(v.find("schema")->as_string(), "fedwcm.ledger/1");
}

TEST_F(HttpExporterTest, IndexNotFoundAndMethodNotAllowed) {
  EXPECT_EQ(http_get(exporter_->port(), "/").status, 200);
  EXPECT_EQ(http_get(exporter_->port(), "/nope").status, 404);

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(exporter_->port());
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  const std::string request = "POST /metrics HTTP/1.1\r\nHost: x\r\n\r\n";
  ::send(fd, request.data(), request.size(), 0);
  std::string raw;
  char buf[1024];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) raw.append(buf, std::size_t(n));
  ::close(fd);
  EXPECT_EQ(raw.rfind("HTTP/1.1 405", 0), 0u) << raw;
}

TEST_F(HttpExporterTest, StopIsIdempotentAndReleasesThePort) {
  const std::uint16_t port = exporter_->port();
  exporter_->stop();
  exporter_->stop();
  EXPECT_FALSE(exporter_->running());
  // The port is released: a fresh exporter can bind it again.
  HttpExporter again(registry_, bus_, {.port = port});
  std::string error;
  ASSERT_TRUE(again.start(error)) << error;
  EXPECT_EQ(again.port(), port);
  EXPECT_EQ(http_get(port, "/healthz").status, 200);
}

TEST(HttpExporter, StartFailsOnOccupiedPort) {
  Registry registry;
  EventBus bus(8, &registry);
  HttpExporter first(registry, bus);
  std::string error;
  ASSERT_TRUE(first.start(error)) << error;
  HttpExporter second(registry, bus, {.port = first.port()});
  EXPECT_FALSE(second.start(error));
  EXPECT_FALSE(error.empty());
}

}  // namespace
}  // namespace fedwcm::obs
