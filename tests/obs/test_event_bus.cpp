// EventBus semantics: disabled no-op, ordering, bounded-ring overflow with a
// metrics-counted drop policy, sinks, JSON serialization, and MPSC publishing
// from the thread pool.
#include <gtest/gtest.h>

#include <atomic>
#include <limits>
#include <set>
#include <sstream>

#include "fedwcm/core/thread_pool.hpp"
#include "fedwcm/obs/event.hpp"
#include "fedwcm/obs/json.hpp"
#include "fedwcm/obs/promtext.hpp"

namespace fedwcm::obs {
namespace {

Event round_begin(std::int64_t round) {
  Event e;
  e.kind = EventKind::kRoundBegin;
  e.round = round;
  return e;
}

TEST(EventBus, DisabledPublishIsANoOp) {
  Registry reg;
  EventBus bus(8, &reg);
  EXPECT_EQ(bus.publish(round_begin(0)), 0u);
  EXPECT_EQ(bus.published(), 0u);
  EXPECT_TRUE(bus.snapshot().empty());
}

TEST(EventBus, PublishStampsSequenceAndTimestampInOrder) {
  Registry reg;
  EventBus bus(8, &reg);
  bus.set_enabled(true);
  EXPECT_EQ(bus.publish(round_begin(0)), 1u);
  EXPECT_EQ(bus.publish(round_begin(1)), 2u);
  const auto events = bus.snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].seq, 1u);
  EXPECT_EQ(events[1].seq, 2u);
  EXPECT_LE(events[0].ts_us, events[1].ts_us);
  EXPECT_EQ(events[0].round, 0);
  EXPECT_EQ(events[1].round, 1);
}

TEST(EventBus, OverflowDropsOldestAndCountsTheDropAsAMetric) {
  Registry reg;
  reg.set_enabled(true);
  EventBus bus(4, &reg);
  bus.set_enabled(true);
  for (std::int64_t r = 0; r < 10; ++r) bus.publish(round_begin(r));
  EXPECT_EQ(bus.published(), 10u);
  EXPECT_EQ(bus.dropped(), 6u);
  const auto events = bus.snapshot();
  ASSERT_EQ(events.size(), 4u);
  // The survivors are the newest four, still oldest-first.
  for (std::size_t i = 0; i < 4; ++i)
    EXPECT_EQ(events[i].round, std::int64_t(6 + i));
  // The overflow policy is itself observable: events.dropped_total is a
  // counter (exported as fedwcm_events_dropped_total on /metrics).
  EXPECT_EQ(reg.counter("events.dropped_total").value(), 6u);
  EXPECT_EQ(reg.counter("events.published_total").value(), 10u);
}

TEST(EventBus, SnapshotLastNReturnsTheNewest) {
  Registry reg;
  EventBus bus(16, &reg);
  bus.set_enabled(true);
  for (std::int64_t r = 0; r < 6; ++r) bus.publish(round_begin(r));
  const auto last2 = bus.snapshot(2);
  ASSERT_EQ(last2.size(), 2u);
  EXPECT_EQ(last2[0].round, 4);
  EXPECT_EQ(last2[1].round, 5);
}

TEST(EventBus, TrySnapshotMatchesSnapshot) {
  Registry reg;
  EventBus bus(16, &reg);
  bus.set_enabled(true);
  for (std::int64_t r = 0; r < 3; ++r) bus.publish(round_begin(r));
  std::vector<Event> out;
  ASSERT_TRUE(bus.try_snapshot(out));
  EXPECT_EQ(out.size(), 3u);
}

TEST(EventBus, SinksSeeEveryPublishedEvent) {
  Registry reg;
  EventBus bus(8, &reg);
  bus.set_enabled(true);
  std::vector<std::uint64_t> seen;
  bus.add_sink([&](const Event& e) { seen.push_back(e.seq); });
  bus.publish(round_begin(0));
  bus.publish(round_begin(1));
  EXPECT_EQ(seen, (std::vector<std::uint64_t>{1, 2}));
}

TEST(EventBus, ClearDropsEventsAndCounters) {
  Registry reg;
  EventBus bus(8, &reg);
  bus.set_enabled(true);
  bus.publish(round_begin(0));
  bus.clear();
  EXPECT_EQ(bus.published(), 0u);
  EXPECT_TRUE(bus.snapshot().empty());
  EXPECT_EQ(bus.publish(round_begin(1)), 1u);
}

TEST(EventBus, EventJsonParsesAndCarriesFields) {
  Event e;
  e.kind = EventKind::kWatchdogAlarm;
  e.seq = 7;
  e.ts_us = 1234;
  e.round = 12;
  e.client = 3;
  e.value = 0.25;
  e.detail = "q_r below threshold";
  json::Value v;
  std::string error;
  ASSERT_TRUE(json::parse(to_json(e), v, error)) << error;
  EXPECT_EQ(v.find("kind")->as_string(), "watchdog_alarm");
  EXPECT_EQ(v.find("seq")->as_number(), 7.0);
  EXPECT_EQ(v.find("round")->as_number(), 12.0);
  EXPECT_EQ(v.find("client")->as_number(), 3.0);
  EXPECT_EQ(v.find("value")->as_number(), 0.25);
  EXPECT_EQ(v.find("detail")->as_string(), "q_r below threshold");
}

TEST(EventBus, EventJsonSerializesNonFiniteValueAsNull) {
  // The exact watchdog case: a diverged loss must not corrupt /events or
  // flight.json output.
  Event e;
  e.kind = EventKind::kWatchdogAlarm;
  e.value = std::numeric_limits<double>::quiet_NaN();
  e.detail = "non-finite train loss";
  json::Value v;
  std::string error;
  ASSERT_TRUE(json::parse(to_json(e), v, error)) << error;
  EXPECT_TRUE(v.find("value")->is_null());
}

TEST(EventBus, OmitsNegativeRoundAndClient) {
  Event e;
  e.kind = EventKind::kRunBegin;
  e.detail = "fedwcm";
  json::Value v;
  std::string error;
  ASSERT_TRUE(json::parse(to_json(e), v, error)) << error;
  EXPECT_EQ(v.find("round"), nullptr);
  EXPECT_EQ(v.find("client"), nullptr);
}

TEST(EventBus, ConcurrentPublishersNeverLoseOrDuplicateSequences) {
  Registry reg;
  reg.set_enabled(true);
  constexpr std::size_t kTasks = 16;
  constexpr std::size_t kPerTask = 250;
  EventBus bus(kTasks * kPerTask, &reg);  // Large enough: no drops expected.
  bus.set_enabled(true);
  std::atomic<std::uint64_t> sink_calls{0};
  bus.add_sink([&](const Event&) {
    sink_calls.fetch_add(1, std::memory_order_relaxed);
  });
  core::ThreadPool pool(4);
  core::parallel_for(pool, 0, kTasks, [&](std::size_t t) {
    for (std::size_t i = 0; i < kPerTask; ++i) {
      Event e = round_begin(std::int64_t(t));
      e.client = std::int64_t(i);
      bus.publish(std::move(e));
    }
  });
  EXPECT_EQ(bus.published(), kTasks * kPerTask);
  EXPECT_EQ(bus.dropped(), 0u);
  EXPECT_EQ(sink_calls.load(), kTasks * kPerTask);
  const auto events = bus.snapshot();
  ASSERT_EQ(events.size(), kTasks * kPerTask);
  std::set<std::uint64_t> seqs;
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (i) EXPECT_LT(events[i - 1].seq, events[i].seq);
    seqs.insert(events[i].seq);
  }
  EXPECT_EQ(seqs.size(), kTasks * kPerTask);
  EXPECT_EQ(*seqs.rbegin(), kTasks * kPerTask);
}

TEST(EventBus, ConcurrentPublishersWithOverflowKeepAccounting) {
  Registry reg;
  reg.set_enabled(true);
  EventBus bus(32, &reg);
  bus.set_enabled(true);
  constexpr std::size_t kTasks = 8;
  constexpr std::size_t kPerTask = 500;
  core::ThreadPool pool(4);
  core::parallel_for(pool, 0, kTasks, [&](std::size_t t) {
    for (std::size_t i = 0; i < kPerTask; ++i)
      bus.publish(round_begin(std::int64_t(t)));
  });
  EXPECT_EQ(bus.published(), kTasks * kPerTask);
  EXPECT_EQ(bus.dropped(), kTasks * kPerTask - 32);
  EXPECT_EQ(bus.snapshot().size(), 32u);
  EXPECT_EQ(reg.counter("events.dropped_total").value(), kTasks * kPerTask - 32);
}

TEST(EventBus, CountersAppearInPrometheusExposition) {
  Registry reg;
  reg.set_enabled(true);
  EventBus bus(4, &reg);
  bus.set_enabled(true);
  for (std::int64_t r = 0; r < 10; ++r) bus.publish(round_begin(r));
  std::ostringstream os;
  reg.write_prometheus(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("fedwcm_events_published_total 10"), std::string::npos)
      << text;
  EXPECT_NE(text.find("fedwcm_events_dropped_total 6"), std::string::npos)
      << text;
  std::string error;
  EXPECT_TRUE(validate_prometheus_text(text, error)) << error;
}

}  // namespace
}  // namespace fedwcm::obs
