// Span tracer: disabled-mode silence, span nesting/depth, thread ids, and
// Chrome trace-event JSON validity (via the self-contained JSON parser).
#include <gtest/gtest.h>

#include <sstream>
#include <thread>

#include "fedwcm/obs/json.hpp"
#include "fedwcm/obs/trace.hpp"
#include "fedwcm/obs/trace_check.hpp"

namespace fedwcm::obs {
namespace {

// The Span RAII type records through Tracer::global(); serialize access and
// restore the disabled/empty state after each test (ctest runs each test in
// its own process, so cross-test leakage is impossible anyway).
class Tracing : public ::testing::Test {
 protected:
  void SetUp() override {
    Tracer::global().clear();
    Tracer::global().set_enabled(true);
  }
  void TearDown() override {
    Tracer::global().set_enabled(false);
    Tracer::global().clear();
  }
};

TEST_F(Tracing, DisabledModeEmitsNothing) {
  Tracer::global().set_enabled(false);
  {
    Span outer("outer");
    Span inner("inner");
  }
  EXPECT_EQ(Tracer::global().event_count(), 0u);
  std::ostringstream os;
  Tracer::global().write_chrome_trace(os);
  json::Value doc;
  std::string error;
  ASSERT_TRUE(json::parse(os.str(), doc, error)) << error;
  EXPECT_TRUE(doc.find("traceEvents")->as_array().empty());
}

TEST_F(Tracing, SpansNestWithDepthAndContainment) {
  {
    Span outer("outer");
    {
      Span inner("inner", "round", 3);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  const auto events = Tracer::global().events();
  ASSERT_EQ(events.size(), 2u);
  // Spans complete innermost-first.
  const TraceEvent& inner = events[0];
  const TraceEvent& outer = events[1];
  EXPECT_EQ(inner.name, "inner");
  EXPECT_EQ(outer.name, "outer");
  EXPECT_EQ(outer.depth, 0u);
  EXPECT_EQ(inner.depth, 1u);
  EXPECT_EQ(inner.tid, outer.tid);
  // Containment: inner starts no earlier and ends no later than outer.
  EXPECT_GE(inner.ts_us, outer.ts_us);
  EXPECT_LE(inner.ts_us + inner.dur_us, outer.ts_us + outer.dur_us);
  EXPECT_TRUE(inner.has_arg);
  EXPECT_EQ(inner.arg_name, "round");
  EXPECT_EQ(inner.arg_value, 3);
}

TEST_F(Tracing, ThreadsGetDistinctIds) {
  std::uint32_t main_tid = trace_thread_id();
  std::uint32_t worker_tid = 0;
  std::thread worker([&] {
    Span span("on_worker");
    worker_tid = trace_thread_id();
  });
  worker.join();
  EXPECT_NE(main_tid, worker_tid);
  const auto events = Tracer::global().events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].tid, worker_tid);
}

TEST_F(Tracing, ChromeTraceJsonIsValidAndWellFormed) {
  {
    Span round("round", "round", 0);
    Span train("local_train");
  }
  {
    Span round("round", "round", 1);
  }
  std::ostringstream os;
  Tracer::global().write_chrome_trace(os);
  const TraceCheck check = validate_chrome_trace(os.str());
  EXPECT_TRUE(check.ok) << check.error;
  EXPECT_EQ(check.num_events, 3u);
  EXPECT_EQ(check.count_named("round"), 2u);
  EXPECT_EQ(check.count_named("local_train"), 1u);

  // And the raw document has the fields Perfetto keys on.
  json::Value doc;
  std::string error;
  ASSERT_TRUE(json::parse(os.str(), doc, error)) << error;
  const json::Value* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  for (const json::Value& ev : events->as_array()) {
    EXPECT_EQ(ev.find("ph")->as_string(), "X");
    EXPECT_GT(ev.find("dur")->as_number(), 0.0);
    ASSERT_NE(ev.find("args"), nullptr);
  }
}

TEST_F(Tracing, ValidatorRejectsPartialOverlap) {
  // Hand-craft two same-thread spans that overlap without nesting.
  const std::string bad =
      "{\"traceEvents\":["
      "{\"name\":\"a\",\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":0,\"dur\":10},"
      "{\"name\":\"b\",\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":5,\"dur\":10}"
      "]}";
  const TraceCheck check = validate_chrome_trace(bad);
  EXPECT_FALSE(check.ok);
  EXPECT_NE(check.error.find("partially overlaps"), std::string::npos);
}

TEST_F(Tracing, ValidatorRejectsMalformedJson) {
  EXPECT_FALSE(validate_chrome_trace("{\"traceEvents\":[").ok);
  EXPECT_FALSE(validate_chrome_trace("[]").ok);
  EXPECT_FALSE(validate_chrome_trace("{\"noEvents\":1}").ok);
}

TEST_F(Tracing, EnablingMidRunOnlyRecordsNewSpans) {
  Tracer::global().set_enabled(false);
  {
    Span before("before");
  }
  Tracer::global().set_enabled(true);
  {
    Span after("after");
  }
  const auto events = Tracer::global().events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "after");
}

}  // namespace
}  // namespace fedwcm::obs
