// Synthetic generators: determinism, spec fidelity, class separability
// (a linear probe must beat chance comfortably), and label noise semantics.
#include "fedwcm/data/synthetic.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace fedwcm::data {
namespace {

TEST(Synthetic, DeterministicForSeed) {
  const auto spec = synthetic_fmnist();
  const TrainTest a = generate(spec, 7);
  const TrainTest b = generate(spec, 7);
  ASSERT_EQ(a.train.size(), b.train.size());
  for (std::size_t i = 0; i < a.train.features.size(); ++i)
    EXPECT_FLOAT_EQ(a.train.features.data()[i], b.train.features.data()[i]);
  EXPECT_EQ(a.train.labels, b.train.labels);
}

TEST(Synthetic, DifferentSeedsDiffer) {
  const auto spec = synthetic_fmnist();
  const TrainTest a = generate(spec, 7);
  const TrainTest b = generate(spec, 8);
  EXPECT_NE(a.train.features.data()[0], b.train.features.data()[0]);
}

TEST(Synthetic, SpecCountsHonoured) {
  auto spec = synthetic_cifar10();
  spec.train_per_class = 20;
  spec.test_per_class = 5;
  const TrainTest tt = generate(spec, 1);
  EXPECT_EQ(tt.train.size(), 20u * spec.num_classes);
  EXPECT_EQ(tt.test.size(), 5u * spec.num_classes);
  EXPECT_EQ(tt.train.dim(), spec.input_dim);
  const auto counts = tt.train.class_counts();
  for (std::size_t c : counts) EXPECT_EQ(c, 20u);
  tt.train.validate();
  tt.test.validate();
}

TEST(Synthetic, AllPaperSpecsGenerate) {
  for (auto spec : all_paper_specs()) {
    spec.train_per_class = 10;
    spec.test_per_class = 4;
    const TrainTest tt = generate(spec, 3);
    EXPECT_EQ(tt.train.size(), 10u * spec.num_classes) << spec.name;
    tt.train.validate();
  }
}

// Nearest-class-mean probe: classes must be separable well above chance.
TEST(Synthetic, ClassesAreLearnable) {
  auto spec = synthetic_cifar10();
  spec.train_per_class = 50;
  spec.test_per_class = 20;
  const TrainTest tt = generate(spec, 11);
  const std::size_t C = spec.num_classes, d = spec.input_dim;
  // Class means from train.
  std::vector<std::vector<double>> mean(C, std::vector<double>(d, 0.0));
  std::vector<std::size_t> n(C, 0);
  for (std::size_t i = 0; i < tt.train.size(); ++i) {
    const std::size_t c = tt.train.labels[i];
    ++n[c];
    for (std::size_t j = 0; j < d; ++j) mean[c][j] += tt.train.features(i, j);
  }
  for (std::size_t c = 0; c < C; ++c)
    for (std::size_t j = 0; j < d; ++j) mean[c][j] /= double(n[c]);
  // Classify test by nearest mean.
  std::size_t correct = 0;
  for (std::size_t i = 0; i < tt.test.size(); ++i) {
    double best = 1e300;
    std::size_t best_c = 0;
    for (std::size_t c = 0; c < C; ++c) {
      double dist = 0.0;
      for (std::size_t j = 0; j < d; ++j) {
        const double diff = double(tt.test.features(i, j)) - mean[c][j];
        dist += diff * diff;
      }
      if (dist < best) {
        best = dist;
        best_c = c;
      }
    }
    correct += (best_c == tt.test.labels[i]);
  }
  const double acc = double(correct) / double(tt.test.size());
  EXPECT_GT(acc, 3.0 / double(C)) << "nearest-mean accuracy " << acc;
}

TEST(Synthetic, LabelNoiseFlipsTrainOnly) {
  auto spec = synthetic_fmnist();
  spec.train_per_class = 50;
  spec.test_per_class = 10;
  auto clean_spec = spec;
  spec.label_noise = 0.3f;
  const TrainTest noisy = generate(spec, 5);
  const TrainTest clean = generate(clean_spec, 5);
  // Test labels identical; train labels differ for roughly 30% (flips to the
  // same label keep it unchanged, so slightly less).
  EXPECT_EQ(noisy.test.labels, clean.test.labels);
  std::size_t flipped = 0;
  for (std::size_t i = 0; i < clean.train.size(); ++i)
    flipped += (noisy.train.labels[i] != clean.train.labels[i]);
  const double rate = double(flipped) / double(clean.train.size());
  EXPECT_GT(rate, 0.18);
  EXPECT_LT(rate, 0.35);
  noisy.train.validate();
}

TEST(Synthetic, DegenerateSpecRejected) {
  SyntheticSpec spec;
  spec.num_classes = 0;
  EXPECT_THROW(generate(spec, 1), std::invalid_argument);
}

}  // namespace
}  // namespace fedwcm::data
