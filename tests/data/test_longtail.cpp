// Long-tail profiles (§3.2): exponential counts, measured IF, subsampling.
#include "fedwcm/data/longtail.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "fedwcm/data/synthetic.hpp"

namespace fedwcm::data {
namespace {

TEST(LongtailCounts, BalancedWhenIfIsOne) {
  const auto counts = longtail_counts(100, 10, 1.0);
  for (std::size_t c : counts) EXPECT_EQ(c, 100u);
}

TEST(LongtailCounts, ExponentialProfile) {
  const auto counts = longtail_counts(1000, 10, 0.1);
  EXPECT_EQ(counts.front(), 1000u);
  EXPECT_EQ(counts.back(), 100u);  // n_head * IF
  // Monotone non-increasing.
  for (std::size_t c = 1; c < counts.size(); ++c)
    EXPECT_LE(counts[c], counts[c - 1]);
  // Middle class roughly n_head * IF^{0.5}.
  EXPECT_NEAR(double(counts[4]), 1000.0 * std::pow(0.1, 4.0 / 9.0), 30.0);
}

class LongtailGrid : public ::testing::TestWithParam<std::tuple<double, std::size_t>> {};

TEST_P(LongtailGrid, MeasuredIfMatchesRequested) {
  const auto [target_if, classes] = GetParam();
  const auto counts = longtail_counts(2000, classes, target_if);
  EXPECT_NEAR(measured_if(counts), target_if, target_if * 0.05 + 0.001);
}

INSTANTIATE_TEST_SUITE_P(IfByClasses, LongtailGrid,
                         ::testing::Combine(::testing::Values(1.0, 0.5, 0.1, 0.05,
                                                              0.01),
                                            ::testing::Values(std::size_t(10),
                                                              std::size_t(50))));

TEST(LongtailCounts, NeverZero) {
  const auto counts = longtail_counts(10, 10, 0.01);
  for (std::size_t c : counts) EXPECT_GE(c, 1u);
}

TEST(LongtailCounts, InvalidIfThrows) {
  EXPECT_THROW(longtail_counts(10, 10, 0.0), std::invalid_argument);
  EXPECT_THROW(longtail_counts(10, 10, 1.5), std::invalid_argument);
}

TEST(MeasuredIf, DegenerateInputs) {
  EXPECT_DOUBLE_EQ(measured_if(std::vector<std::size_t>{0, 0}), 1.0);
  EXPECT_DOUBLE_EQ(measured_if(std::vector<std::size_t>{5, 5}), 1.0);
}

TEST(Subsample, ProducesRequestedProfile) {
  auto spec = synthetic_fmnist();
  spec.train_per_class = 100;
  const TrainTest tt = generate(spec, 13);
  const auto subset = longtail_subsample(tt.train, 0.1, 13);
  const auto counts = tt.train.class_counts(subset);
  EXPECT_EQ(counts.front(), 100u);
  EXPECT_EQ(counts.back(), 10u);
  for (std::size_t c = 1; c < counts.size(); ++c) EXPECT_LE(counts[c], counts[c - 1]);
}

TEST(Subsample, DeterministicAndValidIndices) {
  auto spec = synthetic_fmnist();
  spec.train_per_class = 40;
  const TrainTest tt = generate(spec, 21);
  const auto a = longtail_subsample(tt.train, 0.05, 21);
  const auto b = longtail_subsample(tt.train, 0.05, 21);
  EXPECT_EQ(a, b);
  for (std::size_t i : a) EXPECT_LT(i, tt.train.size());
  // Indices unique.
  auto sorted = a;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_TRUE(std::adjacent_find(sorted.begin(), sorted.end()) == sorted.end());
}

TEST(Subsample, IfOneKeepsEverything) {
  auto spec = synthetic_fmnist();
  spec.train_per_class = 30;
  const TrainTest tt = generate(spec, 5);
  EXPECT_EQ(longtail_subsample(tt.train, 1.0, 5).size(), tt.train.size());
}

}  // namespace
}  // namespace fedwcm::data
