// Batch samplers: epoch coverage for the shuffling batcher, class-uniformity
// for the balanced sampler (the paper's "Balance Sampler" baseline).
#include "fedwcm/data/sampler.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "fedwcm/data/synthetic.hpp"

namespace fedwcm::data {
namespace {

TEST(ShufflingBatcher, OneEpochCoversAllIndicesOnce) {
  std::vector<std::size_t> indices{3, 7, 9, 12, 15, 20, 21};
  ShufflingBatcher batcher(indices, 3, 42);
  EXPECT_EQ(batcher.batches_per_epoch(), 3u);
  std::multiset<std::size_t> seen;
  std::vector<std::size_t> batch;
  for (std::size_t b = 0; b < 3; ++b) {
    batcher.next_batch(batch);
    seen.insert(batch.begin(), batch.end());
  }
  EXPECT_EQ(seen.size(), indices.size());
  for (std::size_t i : indices) EXPECT_EQ(seen.count(i), 1u);
}

TEST(ShufflingBatcher, LastPartialBatchKept) {
  ShufflingBatcher batcher({1, 2, 3, 4, 5}, 2, 7);
  std::vector<std::size_t> batch;
  batcher.next_batch(batch);
  EXPECT_EQ(batch.size(), 2u);
  batcher.next_batch(batch);
  EXPECT_EQ(batch.size(), 2u);
  batcher.next_batch(batch);
  EXPECT_EQ(batch.size(), 1u);
}

TEST(ShufflingBatcher, ReshufflesBetweenEpochs) {
  std::vector<std::size_t> indices(64);
  for (std::size_t i = 0; i < 64; ++i) indices[i] = i;
  ShufflingBatcher batcher(indices, 64, 11);
  std::vector<std::size_t> epoch1, epoch2;
  batcher.next_batch(epoch1);
  batcher.next_batch(epoch2);
  EXPECT_NE(epoch1, epoch2);  // same set, different order (w.h.p.)
  EXPECT_EQ(std::multiset<std::size_t>(epoch1.begin(), epoch1.end()),
            std::multiset<std::size_t>(epoch2.begin(), epoch2.end()));
}

TEST(ShufflingBatcher, DeterministicPerSeed) {
  std::vector<std::size_t> indices{1, 2, 3, 4, 5, 6};
  ShufflingBatcher a(indices, 2, 9), b(indices, 2, 9);
  std::vector<std::size_t> ba, bb;
  for (int i = 0; i < 5; ++i) {
    a.next_batch(ba);
    b.next_batch(bb);
    EXPECT_EQ(ba, bb);
  }
}

TEST(ShufflingBatcher, EmptyIndexSetRejected) {
  EXPECT_THROW(ShufflingBatcher({}, 4, 1), std::invalid_argument);
}

TEST(BalancedClassSampler, DrawsClassesUniformly) {
  // Build a skewed local dataset: 90 samples of class 0, 10 of class 1.
  Dataset ds;
  ds.num_classes = 2;
  ds.features = Matrix(100, 1);
  ds.labels.assign(100, 0);
  for (std::size_t i = 90; i < 100; ++i) ds.labels[i] = 1;
  std::vector<std::size_t> indices(100);
  for (std::size_t i = 0; i < 100; ++i) indices[i] = i;

  BalancedClassSampler sampler(ds, indices, 50, 13);
  std::map<std::size_t, int> class_hits;
  std::vector<std::size_t> batch;
  for (int b = 0; b < 40; ++b) {
    sampler.next_batch(batch);
    EXPECT_EQ(batch.size(), 50u);
    for (std::size_t i : batch) ++class_hits[ds.labels[i]];
  }
  const double frac1 = double(class_hits[1]) / (40.0 * 50.0);
  // Raw frequency would be 0.10; balanced sampling gives ~0.50.
  EXPECT_NEAR(frac1, 0.5, 0.05);
}

TEST(BalancedClassSampler, OnlyUsesOwnedClasses) {
  Dataset ds;
  ds.num_classes = 5;
  ds.features = Matrix(20, 1);
  ds.labels.assign(20, 2);  // the client only owns class 2
  std::vector<std::size_t> indices(20);
  for (std::size_t i = 0; i < 20; ++i) indices[i] = i;
  BalancedClassSampler sampler(ds, indices, 8, 3);
  std::vector<std::size_t> batch;
  sampler.next_batch(batch);
  for (std::size_t i : batch) EXPECT_EQ(ds.labels[i], 2u);
}

TEST(BalancedClassSampler, BatchesPerEpochMatchesDataSize) {
  Dataset ds;
  ds.num_classes = 2;
  ds.features = Matrix(10, 1);
  ds.labels.assign(10, 0);
  std::vector<std::size_t> indices(10);
  for (std::size_t i = 0; i < 10; ++i) indices[i] = i;
  BalancedClassSampler sampler(ds, indices, 4, 3);
  EXPECT_EQ(sampler.batches_per_epoch(), 3u);  // ceil(10/4)
}

}  // namespace
}  // namespace fedwcm::data
