// Dataset utilities: class counts, batch gathering, normalization.
#include "fedwcm/data/dataset.hpp"

#include <gtest/gtest.h>

namespace fedwcm::data {
namespace {

Dataset tiny() {
  Dataset ds;
  ds.num_classes = 3;
  ds.features = Matrix(4, 2, std::vector<float>{1, 2, 3, 4, 5, 6, 7, 8});
  ds.labels = {0, 1, 1, 2};
  return ds;
}

TEST(Dataset, ClassCounts) {
  const Dataset ds = tiny();
  const auto counts = ds.class_counts();
  EXPECT_EQ(counts, (std::vector<std::size_t>{1, 2, 1}));
}

TEST(Dataset, SubsetClassCounts) {
  const Dataset ds = tiny();
  const std::vector<std::size_t> subset{1, 2};
  EXPECT_EQ(ds.class_counts(subset), (std::vector<std::size_t>{0, 2, 0}));
}

TEST(Dataset, ValidateCatchesBadLabels) {
  Dataset ds = tiny();
  ds.validate();  // fine
  ds.labels[0] = 9;
  EXPECT_THROW(ds.validate(), std::invalid_argument);
  ds = tiny();
  ds.labels.pop_back();
  EXPECT_THROW(ds.validate(), std::invalid_argument);
}

TEST(GatherBatch, CopiesRowsAndLabels) {
  const Dataset ds = tiny();
  Matrix x;
  std::vector<std::size_t> y;
  const std::vector<std::size_t> idx{3, 0};
  gather_batch(ds, idx, x, y);
  ASSERT_EQ(x.rows(), 2u);
  EXPECT_FLOAT_EQ(x(0, 0), 7.0f);
  EXPECT_FLOAT_EQ(x(1, 1), 2.0f);
  EXPECT_EQ(y, (std::vector<std::size_t>{2, 0}));
}

TEST(GatherBatch, OutOfRangeThrows) {
  const Dataset ds = tiny();
  Matrix x;
  std::vector<std::size_t> y;
  const std::vector<std::size_t> idx{10};
  EXPECT_THROW(gather_batch(ds, idx, x, y), std::invalid_argument);
}

TEST(NormalizeCounts, SumsToOne) {
  const std::vector<std::size_t> counts{3, 1, 0, 4};
  const auto dist = normalize_counts(counts);
  EXPECT_NEAR(dist[0], 3.0 / 8.0, 1e-12);
  EXPECT_NEAR(dist[2], 0.0, 1e-12);
  double sum = 0.0;
  for (double v : dist) sum += v;
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(NormalizeCounts, AllZeroGivesUniform) {
  const std::vector<std::size_t> counts{0, 0};
  const auto dist = normalize_counts(counts);
  EXPECT_NEAR(dist[0], 0.5, 1e-12);
  EXPECT_NEAR(dist[1], 0.5, 1e-12);
}

}  // namespace
}  // namespace fedwcm::data
