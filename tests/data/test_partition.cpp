// Partition invariants across a (beta, IF, clients) grid — both pipelines of
// Figure 2 must conserve samples, respect their quantity contracts, and show
// the documented skew characteristics.
#include "fedwcm/data/partition.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include <set>

#include "fedwcm/data/longtail.hpp"
#include "fedwcm/data/synthetic.hpp"

namespace fedwcm::data {
namespace {

struct Grid {
  double beta;
  double imbalance;
  std::size_t clients;
};

class PartitionGrid : public ::testing::TestWithParam<Grid> {
 protected:
  static TrainTest make_data() {
    auto spec = synthetic_fmnist();
    spec.train_per_class = 60;
    return generate(spec, 31);
  }
};

TEST_P(PartitionGrid, EqualQuantityConservesAndBalances) {
  const Grid g = GetParam();
  const TrainTest tt = make_data();
  const auto subset = longtail_subsample(tt.train, g.imbalance, 31);
  const Partition p =
      partition_equal_quantity(tt.train, subset, g.clients, g.beta, 31);

  // Conservation: every subset index assigned exactly once.
  std::set<std::size_t> seen;
  for (const auto& ci : p.client_indices)
    for (std::size_t i : ci) EXPECT_TRUE(seen.insert(i).second);
  EXPECT_EQ(seen.size(), subset.size());

  // Equal-quantity contract: client sizes within a tight band of the quota.
  const auto stats = summarize(p, tt.train);
  EXPECT_LT(stats.quantity_cv, 0.15) << "beta=" << g.beta << " IF=" << g.imbalance;
  EXPECT_GE(stats.min_client_size,
            std::size_t(stats.mean_client_size * 0.5));
}

TEST_P(PartitionGrid, FedGrabConservesAndGuaranteesNonEmpty) {
  const Grid g = GetParam();
  const TrainTest tt = make_data();
  const auto subset = longtail_subsample(tt.train, g.imbalance, 31);
  const Partition p = partition_fedgrab(tt.train, subset, g.clients, g.beta, 31);

  std::set<std::size_t> seen;
  for (const auto& ci : p.client_indices)
    for (std::size_t i : ci) EXPECT_TRUE(seen.insert(i).second);
  EXPECT_EQ(seen.size(), subset.size());

  // FedGraB guarantee: no empty clients (subset is large enough here).
  for (const auto& ci : p.client_indices) EXPECT_FALSE(ci.empty());
}

INSTANTIATE_TEST_SUITE_P(
    BetaIfClients, PartitionGrid,
    ::testing::Values(Grid{0.1, 1.0, 10}, Grid{0.1, 0.1, 10}, Grid{0.1, 0.01, 10},
                      Grid{0.6, 0.1, 10}, Grid{0.6, 0.01, 20}, Grid{1.0, 0.5, 20},
                      Grid{0.05, 0.1, 20}, Grid{0.6, 1.0, 30}),
    [](const ::testing::TestParamInfo<Grid>& info) {
      const auto& g = info.param;
      return "beta" + std::to_string(int(g.beta * 100)) + "_if" +
             std::to_string(int(g.imbalance * 100)) + "_k" +
             std::to_string(g.clients);
    });

TEST(Partition, LowBetaProducesHigherSkew) {
  auto spec = synthetic_fmnist();
  spec.train_per_class = 80;
  const TrainTest tt = generate(spec, 17);
  const auto subset = longtail_subsample(tt.train, 0.5, 17);
  const auto skew_of = [&](double beta) {
    const Partition p = partition_equal_quantity(tt.train, subset, 20, beta, 17);
    return summarize(p, tt.train).mean_l1_skew;
  };
  EXPECT_GT(skew_of(0.1), skew_of(10.0) + 0.1);
}

TEST(Partition, FedGrabHasQuantitySkewEqualQuantityDoesNot) {
  auto spec = synthetic_fmnist();
  spec.train_per_class = 80;
  const TrainTest tt = generate(spec, 19);
  const auto subset = longtail_subsample(tt.train, 0.1, 19);
  const Partition eq = partition_equal_quantity(tt.train, subset, 20, 0.1, 19);
  const Partition fg = partition_fedgrab(tt.train, subset, 20, 0.1, 19);
  const auto eq_stats = summarize(eq, tt.train);
  const auto fg_stats = summarize(fg, tt.train);
  // Appendix A: the FedGraB pipeline produces heavy quantity imbalance while
  // ours keeps client sizes nearly equal.
  EXPECT_GT(fg_stats.quantity_cv, eq_stats.quantity_cv * 2.0);
  EXPECT_GT(fg_stats.top_decile_share, eq_stats.top_decile_share);
}

TEST(Partition, DeterministicForSeed) {
  auto spec = synthetic_fmnist();
  spec.train_per_class = 30;
  const TrainTest tt = generate(spec, 23);
  const auto subset = longtail_subsample(tt.train, 0.1, 23);
  const Partition a = partition_equal_quantity(tt.train, subset, 8, 0.1, 5);
  const Partition b = partition_equal_quantity(tt.train, subset, 8, 0.1, 5);
  EXPECT_EQ(a.client_indices, b.client_indices);
  const Partition c = partition_equal_quantity(tt.train, subset, 8, 0.1, 6);
  EXPECT_NE(a.client_indices, c.client_indices);
}

TEST(Partition, CountMatrixMatchesIndices) {
  auto spec = synthetic_fmnist();
  spec.train_per_class = 30;
  const TrainTest tt = generate(spec, 29);
  const auto subset = longtail_subsample(tt.train, 0.5, 29);
  const Partition p = partition_fedgrab(tt.train, subset, 6, 0.5, 29);
  const auto m = p.count_matrix(tt.train);
  ASSERT_EQ(m.size(), 6u * tt.train.num_classes);
  std::size_t total = 0;
  for (std::size_t v : m) total += v;
  EXPECT_EQ(total, p.total());
  for (std::size_t k = 0; k < 6; ++k) {
    std::size_t row = 0;
    for (std::size_t c = 0; c < tt.train.num_classes; ++c)
      row += m[k * tt.train.num_classes + c];
    EXPECT_EQ(row, p.client_indices[k].size());
  }
}

TEST(Partition, ZeroClientsRejected) {
  auto spec = synthetic_fmnist();
  spec.train_per_class = 5;
  const TrainTest tt = generate(spec, 3);
  const auto subset = longtail_subsample(tt.train, 1.0, 3);
  EXPECT_THROW(partition_equal_quantity(tt.train, subset, 0, 0.1, 3),
               std::invalid_argument);
  EXPECT_THROW(partition_fedgrab(tt.train, subset, 0, 0.1, 3),
               std::invalid_argument);
}

}  // namespace
}  // namespace fedwcm::data
