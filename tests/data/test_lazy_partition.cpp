// LazyPartition: per-client datasets are pure functions of (seed, spec, id) —
// deterministic, consistent between the counts and indices views, quota-exact,
// and equal to their own eager materialization.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <numeric>
#include <set>

#include "fedwcm/data/lazy.hpp"
#include "fedwcm/data/longtail.hpp"
#include "fedwcm/data/synthetic.hpp"

namespace fedwcm::data {
namespace {

struct LazyWorld {
  TrainTest data;
  std::vector<std::size_t> subset;
};

LazyWorld make_lazy_world() {
  SyntheticSpec spec;
  spec.name = "lazy_world";
  spec.num_classes = 6;
  spec.input_dim = 12;
  spec.subclusters = 2;
  spec.train_per_class = 60;
  spec.test_per_class = 10;
  LazyWorld w;
  w.data = generate(spec, 42);
  w.subset = longtail_subsample(w.data.train, 0.1, 42);
  return w;
}

LazySpec make_spec(std::size_t clients, std::uint64_t seed = 7,
                   std::size_t per_client = 0) {
  LazySpec s;
  s.num_clients = clients;
  s.beta = 0.1;
  s.seed = seed;
  s.samples_per_client = per_client;
  return s;
}

TEST(LazyPartition, DeterministicAcrossInstancesAndCalls) {
  const auto w = make_lazy_world();
  LazyPartition a(w.data.train, w.subset, make_spec(50));
  LazyPartition b(w.data.train, w.subset, make_spec(50));
  for (std::size_t k : {std::size_t(0), std::size_t(7), std::size_t(49)}) {
    EXPECT_EQ(a.client_indices(k), b.client_indices(k)) << k;
    EXPECT_EQ(a.client_indices(k), a.client_indices(k)) << k;  // re-entrant
    EXPECT_EQ(a.client_class_counts(k), b.client_class_counts(k)) << k;
  }
  // A different seed re-deals the data.
  LazyPartition c(w.data.train, w.subset, make_spec(50, 8));
  EXPECT_NE(a.client_indices(0), c.client_indices(0));
}

TEST(LazyPartition, CountsConsistentWithIndices) {
  const auto w = make_lazy_world();
  LazyPartition p(w.data.train, w.subset, make_spec(20));
  for (std::size_t k = 0; k < 20; ++k) {
    const auto counts = p.client_class_counts(k);
    const auto indices = p.client_indices(k);
    std::vector<std::size_t> observed(p.num_classes(), 0);
    for (std::size_t i : indices) ++observed[w.data.train.labels[i]];
    EXPECT_EQ(observed, counts) << "client " << k;
    EXPECT_EQ(indices.size(), p.client_size(k)) << "client " << k;
  }
}

TEST(LazyPartition, QuotaExactAndOverridable) {
  const auto w = make_lazy_world();
  LazyPartition auto_quota(w.data.train, w.subset, make_spec(20));
  EXPECT_EQ(auto_quota.samples_per_client(),
            std::max<std::size_t>(1, w.subset.size() / 20));
  LazyPartition fixed(w.data.train, w.subset, make_spec(20, 7, 17));
  EXPECT_EQ(fixed.samples_per_client(), 17u);
  for (std::size_t k = 0; k < 20; ++k)
    EXPECT_EQ(fixed.client_indices(k).size(), 17u);
  // More clients than samples: quota floors at 1, never 0.
  LazyPartition tiny(w.data.train, w.subset,
                     make_spec(10 * w.subset.size()));
  EXPECT_EQ(tiny.samples_per_client(), 1u);
}

TEST(LazyPartition, IndicesDrawnFromSubsetOnly) {
  const auto w = make_lazy_world();
  const std::set<std::size_t> allowed(w.subset.begin(), w.subset.end());
  LazyPartition p(w.data.train, w.subset, make_spec(30));
  for (std::size_t k = 0; k < 30; ++k)
    for (std::size_t i : p.client_indices(k))
      EXPECT_TRUE(allowed.count(i)) << "client " << k << " index " << i;
}

TEST(LazyPartition, GlobalCountsMatchSubsetHistogram) {
  const auto w = make_lazy_world();
  LazyPartition p(w.data.train, w.subset, make_spec(10));
  std::vector<std::size_t> hist(p.num_classes(), 0);
  for (std::size_t i : w.subset) ++hist[w.data.train.labels[i]];
  EXPECT_EQ(p.global_class_counts(), hist);
}

TEST(LazyPartition, MaterializeMatchesPerClientViews) {
  const auto w = make_lazy_world();
  LazyPartition p(w.data.train, w.subset, make_spec(25));
  const Partition eager = p.materialize();
  ASSERT_EQ(eager.num_clients(), 25u);
  EXPECT_EQ(eager.num_classes, p.num_classes());
  for (std::size_t k = 0; k < 25; ++k)
    EXPECT_EQ(eager.client_indices[k], p.client_indices(k)) << k;
}

TEST(LazyPartition, BetaControlsSkew) {
  // Smaller beta -> more concentrated per-client class mixtures. Compare the
  // mean number of distinct classes per client at beta 0.05 vs 100.
  const auto w = make_lazy_world();
  auto mean_distinct = [&](double beta) {
    LazySpec s = make_spec(40, 7, 30);
    s.beta = beta;
    LazyPartition p(w.data.train, w.subset, s);
    double total = 0.0;
    for (std::size_t k = 0; k < 40; ++k) {
      const auto counts = p.client_class_counts(k);
      total += double(std::count_if(counts.begin(), counts.end(),
                                    [](std::size_t c) { return c > 0; }));
    }
    return total / 40.0;
  };
  EXPECT_LT(mean_distinct(0.05), mean_distinct(100.0));
}

}  // namespace
}  // namespace fedwcm::data
